//! Multi-session throughput benchmark: client statements per second as
//! the session count grows, under the engine's lock manager, victim
//! aborts, and automatic statement retry.
//!
//! ```text
//! cargo run --release -p grt-bench --bin sessions [-- --quick] [-- --wire]
//! ```
//!
//! Emits `BENCH_concurrency.json` in the working directory (with
//! `--quick`: fewer operations and session counts, written to
//! `BENCH_concurrency_quick.json` for the CI `bench_gate
//! --throughput`). Two configurations:
//!
//! * `read_committed`: every session at the default READ COMMITTED
//!   level — writers contend on exclusive LO locks but readers release
//!   at close, so deadlocks are rare and throughput tracks raw engine
//!   overhead;
//! * `repeatable_read_mix`: half the sessions SET ISOLATION TO
//!   REPEATABLE READ, whose UPDATEs perform the shared→exclusive
//!   upgrade that manufactures deadlock cycles. Throughput here prices
//!   the victim-abort + backoff + retry machinery, and the report
//!   records how many deadlocks and retries the run absorbed;
//! * `prepared`: the `read_committed` workload issued through
//!   PREPARE/EXECUTE handles compiled once at session start. On this
//!   write-heavy mix GR-tree maintenance dominates, so `prepared`
//!   tracks `read_committed` closely — the transparent plan cache
//!   already gives ad-hoc statements the compiled-form reuse;
//! * `read_mostly`: every session interleaves seven scans per mixed-DML
//!   statement (write ops staggered across sessions). The scans ride
//!   the lock-free snapshot read path, so aggregate throughput must
//!   hold flat-to-rising as sessions grow; `bench_gate --read-scaling`
//!   gates the 8-session rate against the 1-session rate.
//!
//! The `prepared_speedup` section isolates the compile-once payoff on
//! the workload where it matters: point-probe index SELECTs whose
//! execution is a bare tree descent, reissued many times per session.
//! It compares EXECUTE against ad-hoc statements on a database with the
//! transparent plan cache *disabled* (`plan_cache_size: 0` — compile
//! every time), and also records the plan-cached ad-hoc rate, which
//! lands within noise of EXECUTE. `bench_gate --prepared-speedup`
//! guards the EXECUTE-over-uncached ratio.
//!
//! A final `batch_sweep` section re-runs the 4-session scan-heavy mix
//! with `scan_batch_rows` at 1 / 16 / 256, pricing the per-call
//! overhead the batched `am_getnext_batch` fetch amortises.
//!
//! Each `(config, sessions)` pair runs on a fresh in-memory database so
//! tree growth from one measurement never bleeds into the next; the
//! best of `reps` repetitions is reported.
//!
//! With `--wire` the benchmark instead prices the served path: the
//! same point-probe workload through a `RemoteDriver` against a
//! loopback `grt-server` versus an `EmbeddedDriver` on an identical
//! database, reporting per-session-count throughput, p99 statement
//! latency, the wire-vs-embedded overhead ratio, and the sequential
//! connect/disconnect rate. Written to `BENCH_wire.json`
//! (`BENCH_wire_quick.json` with `--quick`) and gated by `bench_gate
//! --wire-overhead`.

use grt_bench::CostTrailer;
use grt_blade::{install_grtree_blade, GrTreeAmOptions};
use grt_client::{Driver, EmbeddedDriver, RemoteDriver};
use grt_ids::{Database, DatabaseOptions, IdsError};
use grt_sbspace::{SbError, SbspaceOptions};
use grt_server::{Server, ServerOptions};
use grt_temporal::{Day, MockClock};
use std::fmt::Write as _;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct Config {
    name: &'static str,
    /// Fraction of sessions (numerator over 2) running REPEATABLE READ.
    rr_half: bool,
    /// Sessions PREPARE their four statement shapes during setup and
    /// issue the whole workload through EXECUTE handles.
    prepared: bool,
    /// Seven reads per write: every session scans on seven of each
    /// eight ops and runs one mixed-DML statement on the eighth, so the
    /// per-session workload is identical at every session count. Scans
    /// route over lock-free space snapshots. `bench_gate
    /// --read-scaling` gates that this config's throughput does not
    /// collapse from 1 to 8 sessions — the pre-snapshot regime queued
    /// every reader behind the writers' exclusive LO locks.
    read_mostly: bool,
}

const CONFIGS: [Config; 4] = [
    Config {
        name: "read_committed",
        rr_half: false,
        prepared: false,
        read_mostly: false,
    },
    Config {
        name: "repeatable_read_mix",
        rr_half: true,
        prepared: false,
        read_mostly: false,
    },
    Config {
        name: "prepared",
        rr_half: false,
        prepared: true,
        read_mostly: false,
    },
    Config {
        name: "read_mostly",
        rr_half: false,
        prepared: false,
        read_mostly: true,
    },
];

/// Extents spread over 1997 so updates and scans overlap heavily.
const EXTENTS: [&str; 4] = [
    "05/18/1997, UC, 05/18/1997, NOW",
    "03/01/1997, UC, 03/01/1997, 09/30/1997",
    "06/10/1997, UC, 06/10/1997, NOW",
    "01/05/1997, UC, 01/05/1997, 12/20/1997",
];

const QUERY: &str = "Overlaps(Time_Extent, '01/01/1997, UC, 01/01/1997, NOW')";

/// Deterministic xorshift64* — keeps run-to-run workloads identical.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn fresh_db() -> Database {
    let defaults = DatabaseOptions::default();
    fresh_db_with(defaults.scan_batch_rows, defaults.plan_cache_size)
}

fn fresh_db_with_batch(scan_batch_rows: usize) -> Database {
    fresh_db_with(scan_batch_rows, DatabaseOptions::default().plan_cache_size)
}

fn fresh_db_with(scan_batch_rows: usize, plan_cache_size: usize) -> Database {
    let db = Database::new(DatabaseOptions {
        space: SbspaceOptions {
            pool_pages: 2048,
            lock_timeout: Duration::from_millis(2_000),
            ..Default::default()
        },
        clock: Arc::new(MockClock::new(Day(10_100))),
        deadlock_retries: 10,
        retry_backoff: Duration::from_millis(1),
        scan_workers: 1,
        scan_batch_rows,
        plan_cache_size,
        ..Default::default()
    });
    install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    let setup = db.connect();
    setup
        .exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    setup
        .exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    // Seed rows give scans and cross-session updates a realistic
    // working set to chew through from the first operation.
    for i in 0..96u64 {
        let e = EXTENTS[(i % 4) as usize];
        setup
            .exec(&format!("INSERT INTO t VALUES ({}, '{e}')", 9_000_000 + i))
            .unwrap();
    }
    db
}

struct Measured {
    stmt_per_sec: f64,
    statements: u64,
    deadlocks: u64,
    retries: u64,
    diff: grt_metrics::MetricsSnapshot,
}

/// `sessions` workers each issue `ops` mixed statements; returns the
/// client-statement throughput and the contention counters the run
/// absorbed. Statements lost to lock timeouts still count as issued —
/// the client waited for them either way. With `prepared`, the four
/// statement shapes are compiled once per session before the clock
/// starts and the timed loop goes through EXECUTE handles.
fn run(
    db: &Database,
    sessions: usize,
    ops: usize,
    rr_half: bool,
    prepared: bool,
    read_mostly: bool,
) -> Measured {
    let conns: Vec<_> = (0..sessions)
        .map(|i| {
            let conn = db.connect();
            if rr_half && i % 2 == 1 {
                conn.exec("SET ISOLATION TO REPEATABLE READ").unwrap();
            }
            if prepared {
                conn.exec("PREPARE ins FROM 'INSERT INTO t VALUES (?, ?)'")
                    .unwrap();
                conn.exec("PREPARE upd FROM 'UPDATE t SET Time_Extent = ? WHERE id = ?'")
                    .unwrap();
                conn.exec("PREPARE del FROM 'DELETE FROM t WHERE id = ?'")
                    .unwrap();
                conn.exec(
                    "PREPARE sel FROM 'SELECT id FROM t \
                     WHERE Overlaps(Time_Extent, ?)'",
                )
                .unwrap();
            }
            conn
        })
        .collect();
    let before = db.metrics_snapshot();
    let barrier = Arc::new(Barrier::new(sessions + 1));
    let start = Instant::now();
    std::thread::scope(|s| {
        for (w, conn) in conns.iter().enumerate() {
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let mut rng = Rng(0x9e37_79b9 + w as u64);
                let mut my_ids: Vec<u64> = Vec::new();
                barrier.wait();
                for op in 0..ops {
                    // Read-mostly sessions interleave seven scans per
                    // DML statement, staggered by session index so the
                    // write ops don't land in lockstep. Scans ride the
                    // snapshot read path while the writes keep
                    // committing underneath them; keeping every session
                    // on the same 7:1 mix makes the 1-session and
                    // 8-session figures directly comparable.
                    if read_mostly && (op + w) % 8 != 7 {
                        match conn.exec(&format!("SELECT id FROM t WHERE {QUERY}")) {
                            Ok(_)
                            | Err(IdsError::Storage(
                                SbError::LockTimeout(_) | SbError::Deadlock(_),
                            )) => continue,
                            Err(other) => panic!("session {w}: unexpected error {other}"),
                        }
                    }
                    let r = match rng.below(10) {
                        0..=3 => {
                            let id = w as u64 * 1_000_000 + op as u64;
                            let e = EXTENTS[rng.below(4) as usize];
                            let r = conn.exec(&if prepared {
                                format!("EXECUTE ins USING {id}, '{e}'")
                            } else {
                                format!("INSERT INTO t VALUES ({id}, '{e}')")
                            });
                            if r.is_ok() {
                                my_ids.push(id);
                            }
                            r
                        }
                        4..=5 if !my_ids.is_empty() => {
                            let id = my_ids[rng.below(my_ids.len() as u64) as usize];
                            let e = EXTENTS[rng.below(4) as usize];
                            conn.exec(&if prepared {
                                format!("EXECUTE upd USING '{e}', {id}")
                            } else {
                                format!("UPDATE t SET Time_Extent = '{e}' WHERE id = {id}")
                            })
                        }
                        6..=7 if !my_ids.is_empty() => {
                            let i = rng.below(my_ids.len() as u64) as usize;
                            let id = my_ids[i];
                            let r = conn.exec(&if prepared {
                                format!("EXECUTE del USING {id}")
                            } else {
                                format!("DELETE FROM t WHERE id = {id}")
                            });
                            if r.is_ok() {
                                my_ids.swap_remove(i);
                            }
                            r
                        }
                        _ => {
                            if prepared {
                                conn.exec(
                                    "EXECUTE sel USING \
                                     '01/01/1997, UC, 01/01/1997, NOW'",
                                )
                            } else {
                                conn.exec(&format!("SELECT id FROM t WHERE {QUERY}"))
                            }
                        }
                    };
                    match r {
                        Ok(_)
                        | Err(IdsError::Storage(
                            SbError::LockTimeout(_) | SbError::Deadlock(_),
                        )) => {}
                        Err(other) => panic!("session {w}: unexpected error {other}"),
                    }
                }
            });
        }
        barrier.wait();
    });
    let elapsed = start.elapsed();
    let issued = (sessions * ops) as u64;
    let diff = db.metrics_snapshot().since(&before);
    Measured {
        stmt_per_sec: issued as f64 / elapsed.as_secs_f64(),
        statements: issued,
        deadlocks: diff.get("lock.deadlocks"),
        retries: diff.get("stmt.retries"),
        diff,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    if std::env::args().any(|a| a == "--wire") {
        wire_bench(quick);
        return;
    }
    // Quick keeps a subset of the full run's session counts so the CI
    // gate always finds shared (config, sessions) pairs to compare.
    let (session_counts, ops, reps, out_file): (&[usize], usize, usize, &str) = if quick {
        (&[1, 4], 60, 2, "BENCH_concurrency_quick.json")
    } else {
        (&[1, 2, 4, 8], 200, 4, "BENCH_concurrency.json")
    };

    let mut json = String::from("{\n");
    let mut summary: Vec<String> = Vec::new();
    for cfg in CONFIGS.iter() {
        println!(
            "== {} ({}) ==",
            cfg.name,
            if cfg.rr_half {
                "half the sessions REPEATABLE READ"
            } else if cfg.prepared {
                "all statements through PREPARE/EXECUTE"
            } else if cfg.read_mostly {
                "7 reads : 1 write per session, scans on the snapshot path"
            } else {
                "all sessions READ COMMITTED"
            }
        );
        // Quick mode still measures read_mostly at 1 and 8 sessions:
        // those two points are exactly what `bench_gate --read-scaling`
        // compares, and the CI smoke run feeds it the quick report.
        let counts: &[usize] = if cfg.read_mostly && quick {
            &[1, 8]
        } else {
            session_counts
        };
        let mut rows = Vec::new();
        for &n in counts {
            let mut best: Option<Measured> = None;
            for _ in 0..reps {
                // A fresh database per repetition: tree growth and
                // logically-deleted versions never accumulate across
                // measurements.
                let db = fresh_db();
                let m = run(&db, n, ops, cfg.rr_half, cfg.prepared, cfg.read_mostly);
                assert!(
                    db.space().locks_quiescent(),
                    "bench leaked locks at {n} sessions"
                );
                if best
                    .as_ref()
                    .is_none_or(|b| m.stmt_per_sec > b.stmt_per_sec)
                {
                    best = Some(m);
                }
            }
            let m = best.unwrap();
            println!(
                "  {n} session(s): {:9.1} stmt/s  ({} statements, {} deadlocks, {} retries)",
                m.stmt_per_sec, m.statements, m.deadlocks, m.retries
            );
            println!("{}", CostTrailer::line(&format!("sessions n={n}"), &m.diff));
            rows.push(format!(
                "      {{\"sessions\": {n}, \"stmt_per_sec\": {:.1}, \"statements\": {}, \
                 \"deadlocks\": {}, \"retries\": {}}}",
                m.stmt_per_sec, m.statements, m.deadlocks, m.retries
            ));
            if n == *counts.last().unwrap() {
                summary.push(format!(
                    "{}: {n}-session {:.1} stmt/s, {} deadlocks, {} retries",
                    cfg.name, m.stmt_per_sec, m.deadlocks, m.retries
                ));
            }
        }
        let _ = write!(
            json,
            "  \"{}\": {{\n    \"rr_sessions\": \"{}\",\n    \"sessions\": [\n{}\n    ]\n  }},\n",
            cfg.name,
            if cfg.rr_half { "half" } else { "none" },
            rows.join(",\n"),
        );
    }

    // Compile-once payoff, isolated: point-probe index SELECTs whose
    // execution is a bare tree descent. EXECUTE (compiled once at
    // PREPARE) against ad-hoc with the transparent cache disabled
    // (compile every time); the plan-cached ad-hoc rate rides along to
    // show the transparent cache closes the same gap.
    println!("== prepared speedup (point probes, vs compile-every-time) ==");
    let mut rows = Vec::new();
    let probe_ops = if quick { 600 } else { 1_500 };
    for &n in session_counts {
        let mut uncached = 0f64;
        let mut prepared = 0f64;
        let mut cached = 0f64;
        for _ in 0..reps {
            let defaults = DatabaseOptions::default();
            let db = fresh_db_with(defaults.scan_batch_rows, 0);
            uncached = uncached.max(probe_run(&db, n, probe_ops, ProbeMode::Adhoc));
            let db = fresh_db_with(defaults.scan_batch_rows, 0);
            prepared = prepared.max(probe_run(&db, n, probe_ops, ProbeMode::Execute));
            let db = fresh_db();
            cached = cached.max(probe_run(&db, n, probe_ops, ProbeMode::Adhoc));
        }
        let speedup = prepared / uncached;
        println!(
            "  {n} session(s): {speedup:.2}x  \
             (EXECUTE {prepared:.0} stmt/s, uncached ad-hoc {uncached:.0}, \
             plan-cached ad-hoc {cached:.0})"
        );
        rows.push(format!(
            "      {{\"sessions\": {n}, \"speedup\": {speedup:.3}, \
             \"prepared_stmt_per_sec\": {prepared:.1}, \
             \"uncached_stmt_per_sec\": {uncached:.1}, \
             \"cached_stmt_per_sec\": {cached:.1}}}"
        ));
    }
    let _ = write!(
        json,
        "  \"prepared_speedup\": {{\n    \"baseline\": \"uncached_adhoc\",\n    \
         \"workload\": \"point_probe_select\",\n    \
         \"sessions\": [\n{}\n    ]\n  }},\n",
        rows.join(",\n")
    );

    // Batch sweep: a scan-heavy 4-session run at different
    // `scan_batch_rows`, pricing the per-call AM overhead the batched
    // fetch amortises.
    println!("== batch sweep (scan-heavy, 4 sessions) ==");
    let mut rows = Vec::new();
    let sweep_ops = if quick { 40 } else { 120 };
    for batch in [1usize, 16, 256] {
        let mut best = 0f64;
        for _ in 0..reps {
            let db = fresh_db_with_batch(batch);
            let m = scan_sweep(&db, 4, sweep_ops);
            best = best.max(m);
        }
        println!("  batch {batch:3}: {best:9.1} stmt/s");
        rows.push(format!(
            "      {{\"batch\": {batch}, \"stmt_per_sec\": {best:.1}}}"
        ));
    }
    let _ = write!(
        json,
        "  \"batch_sweep\": {{\n    \"sessions_fixed\": 4,\n    \"batches\": [\n{}\n    ]\n  }}\n",
        rows.join(",\n")
    );

    json.push('}');
    json.push('\n');
    std::fs::write(out_file, &json).unwrap();
    println!("\nwrote {out_file}");
    for line in summary {
        println!("  {line}");
    }
}

/// The `--wire` benchmark: the point-probe workload through remote
/// and embedded drivers, plus the raw connection rate.
fn wire_bench(quick: bool) {
    let (session_counts, ops, reps, out_file): (&[usize], usize, usize, &str) = if quick {
        (&[1, 4], 200, 2, "BENCH_wire_quick.json")
    } else {
        (&[1, 2, 4, 8], 600, 3, "BENCH_wire.json")
    };

    // Sequential connect → handshake → goodbye cycles per second:
    // the session setup/teardown cost a pooled client amortises.
    let db = fresh_db();
    let mut server = Server::new(db, ServerOptions::default())
        .start()
        .expect("loopback server");
    let addr = server.local_addr().to_string();
    let cycles = if quick { 100 } else { 400 };
    let start = Instant::now();
    for _ in 0..cycles {
        RemoteDriver::connect(&*addr)
            .expect("connect")
            .goodbye()
            .expect("goodbye");
    }
    let conn_per_sec = cycles as f64 / start.elapsed().as_secs_f64();
    server.shutdown();
    println!("== wire connections ==");
    println!("  {conn_per_sec:9.1} connect/disconnect cycles/s");

    println!("== wire vs embedded (point probes) ==");
    let mut rows = Vec::new();
    for &n in session_counts {
        let mut wire_rate = 0f64;
        let mut wire_p99 = u64::MAX;
        let mut embedded_rate = 0f64;
        for _ in 0..reps {
            // Served: the same database the server owns, reached over
            // loopback TCP.
            let db = fresh_db();
            let mut server = Server::new(db, ServerOptions::default())
                .start()
                .expect("loopback server");
            let addr = server.local_addr().to_string();
            let drivers: Vec<Box<dyn Driver>> = (0..n)
                .map(|_| {
                    Box::new(RemoteDriver::connect(&*addr).expect("connect")) as Box<dyn Driver>
                })
                .collect();
            let (rate, p99) = driver_probe_run(&drivers, ops);
            server.shutdown();
            if rate > wire_rate {
                wire_rate = rate;
                wire_p99 = p99;
            }

            // Embedded: identical workload, in-process connections.
            let db = fresh_db();
            let drivers: Vec<Box<dyn Driver>> = (0..n)
                .map(|_| Box::new(EmbeddedDriver::connect(&db)) as Box<dyn Driver>)
                .collect();
            let (rate, _) = driver_probe_run(&drivers, ops);
            embedded_rate = embedded_rate.max(rate);
        }
        let overhead = embedded_rate / wire_rate;
        println!(
            "  {n} session(s): wire {wire_rate:9.1} stmt/s (p99 {:.1} us), \
             embedded {embedded_rate:9.1} stmt/s, overhead {overhead:.2}x",
            wire_p99 as f64 / 1_000.0
        );
        rows.push(format!(
            "      {{\"sessions\": {n}, \"stmt_per_sec\": {wire_rate:.1}, \
             \"p99_us\": {:.1}, \"embedded_stmt_per_sec\": {embedded_rate:.1}, \
             \"overhead_ratio\": {overhead:.3}}}",
            wire_p99 as f64 / 1_000.0
        ));
    }

    let json = format!(
        "{{\n  \"connections\": {{\n    \"per_sec\": {conn_per_sec:.1}\n  }},\n  \
         \"wire\": {{\n    \"workload\": \"point_probe_select\",\n    \
         \"sessions\": [\n{}\n    ]\n  }}\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(out_file, &json).unwrap();
    println!("\nwrote {out_file}");
}

/// Each driver runs `ops` prepared point probes on its own thread;
/// returns aggregate statements per second and the p99 per-statement
/// latency in nanoseconds.
fn driver_probe_run(drivers: &[Box<dyn Driver>], ops: usize) -> (f64, u64) {
    for d in drivers {
        d.prepare("sel", "SELECT id FROM t WHERE Overlaps(Time_Extent, ?)")
            .unwrap();
        for p in PROBES.iter().cycle().take(8) {
            d.execute("sel", &[grt_ids::Value::Text((*p).into())])
                .unwrap();
        }
    }
    let barrier = Arc::new(Barrier::new(drivers.len() + 1));
    let start = Instant::now();
    let mut lats: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = drivers
            .iter()
            .enumerate()
            .map(|(w, d)| {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let mut rng = Rng(0x9e37_79b9 + w as u64);
                    let mut lats = Vec::with_capacity(ops);
                    barrier.wait();
                    for _ in 0..ops {
                        let p = PROBES[rng.below(4) as usize];
                        let t = Instant::now();
                        d.execute("sel", &[grt_ids::Value::Text(p.into())]).unwrap();
                        lats.push(t.elapsed().as_nanos() as u64);
                    }
                    lats
                })
            })
            .collect();
        barrier.wait();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed = start.elapsed();
    lats.sort_unstable();
    let p99 = lats[(lats.len() * 99 / 100).saturating_sub(1)];
    ((drivers.len() * ops) as f64 / elapsed.as_secs_f64(), p99)
}

#[derive(Clone, Copy, PartialEq)]
enum ProbeMode {
    /// Ad-hoc SQL text per probe (compiled fresh unless the database's
    /// transparent plan cache serves it).
    Adhoc,
    /// One PREPARE per session, probes issued via EXECUTE.
    Execute,
}

/// Narrow probe extents that overlap nothing in the seed data: the
/// scan is a pure index descent, so per-statement compile cost is the
/// dominant variable between the modes.
const PROBES: [&str; 4] = [
    "01/01/1990, 01/01/1990, 01/01/1990, 01/01/1990",
    "06/15/1991, 06/15/1991, 06/15/1991, 06/15/1991",
    "03/03/1992, 03/03/1992, 03/03/1992, 03/03/1992",
    "12/24/1993, 12/24/1993, 12/24/1993, 12/24/1993",
];

/// `sessions` workers each issue `ops` point-probe SELECTs; returns
/// client statements per second.
fn probe_run(db: &Database, sessions: usize, ops: usize, mode: ProbeMode) -> f64 {
    let conns: Vec<_> = (0..sessions)
        .map(|_| {
            let conn = db.connect();
            if mode == ProbeMode::Execute {
                conn.exec(
                    "PREPARE sel FROM 'SELECT id FROM t \
                     WHERE Overlaps(Time_Extent, ?)'",
                )
                .unwrap();
            }
            // Untimed warmup: touches every probe shape so the buffer
            // pool, the plan memos (including the generic promotion
            // after repeated re-costs), and the transparent cache are
            // in steady state — the timed loop measures "execute
            // many", not first-touch costs.
            for p in PROBES.iter().cycle().take(8) {
                let sql = match mode {
                    ProbeMode::Adhoc => {
                        format!("SELECT id FROM t WHERE Overlaps(Time_Extent, '{p}')")
                    }
                    ProbeMode::Execute => format!("EXECUTE sel USING '{p}'"),
                };
                conn.exec(&sql).unwrap();
            }
            conn
        })
        .collect();
    let barrier = Arc::new(Barrier::new(sessions + 1));
    let start = Instant::now();
    std::thread::scope(|s| {
        for (w, conn) in conns.iter().enumerate() {
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let mut rng = Rng(0x9e37_79b9 + w as u64);
                barrier.wait();
                for _ in 0..ops {
                    let p = PROBES[rng.below(4) as usize];
                    let sql = match mode {
                        ProbeMode::Adhoc => {
                            format!("SELECT id FROM t WHERE Overlaps(Time_Extent, '{p}')")
                        }
                        ProbeMode::Execute => format!("EXECUTE sel USING '{p}'"),
                    };
                    conn.exec(&sql).unwrap();
                }
            });
        }
        barrier.wait();
    });
    (sessions * ops) as f64 / start.elapsed().as_secs_f64()
}

/// Seeds a scan-heavy table and hammers it with the overlap probe from
/// `sessions` concurrent sessions; returns statements per second.
fn scan_sweep(db: &Database, sessions: usize, ops: usize) -> f64 {
    let setup = db.connect();
    for i in 0..1_500u64 {
        let e = EXTENTS[(i % 4) as usize];
        setup
            .exec(&format!("INSERT INTO t VALUES ({}, '{e}')", 8_000_000 + i))
            .unwrap();
    }
    let conns: Vec<_> = (0..sessions).map(|_| db.connect()).collect();
    let barrier = Arc::new(Barrier::new(sessions + 1));
    let start = Instant::now();
    std::thread::scope(|s| {
        for conn in conns.iter() {
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                barrier.wait();
                for _ in 0..ops {
                    conn.exec(&format!("SELECT id FROM t WHERE {QUERY}"))
                        .unwrap();
                }
            });
        }
        barrier.wait();
    });
    (sessions * ops) as f64 / start.elapsed().as_secs_f64()
}
