//! Multi-session throughput benchmark: client statements per second as
//! the session count grows, under the engine's lock manager, victim
//! aborts, and automatic statement retry.
//!
//! ```text
//! cargo run --release -p grt-bench --bin sessions [-- --quick]
//! ```
//!
//! Emits `BENCH_concurrency.json` in the working directory (with
//! `--quick`: fewer operations and session counts, written to
//! `BENCH_concurrency_quick.json` for the CI `bench_gate
//! --throughput`). Two configurations:
//!
//! * `read_committed`: every session at the default READ COMMITTED
//!   level — writers contend on exclusive LO locks but readers release
//!   at close, so deadlocks are rare and throughput tracks raw engine
//!   overhead;
//! * `repeatable_read_mix`: half the sessions SET ISOLATION TO
//!   REPEATABLE READ, whose UPDATEs perform the shared→exclusive
//!   upgrade that manufactures deadlock cycles. Throughput here prices
//!   the victim-abort + backoff + retry machinery, and the report
//!   records how many deadlocks and retries the run absorbed.
//!
//! Each `(config, sessions)` pair runs on a fresh in-memory database so
//! tree growth from one measurement never bleeds into the next; the
//! best of `reps` repetitions is reported.

use grt_bench::CostTrailer;
use grt_blade::{install_grtree_blade, GrTreeAmOptions};
use grt_ids::{Database, DatabaseOptions, IdsError};
use grt_sbspace::{SbError, SbspaceOptions};
use grt_temporal::{Day, MockClock};
use std::fmt::Write as _;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct Config {
    name: &'static str,
    /// Fraction of sessions (numerator over 2) running REPEATABLE READ.
    rr_half: bool,
}

const CONFIGS: [Config; 2] = [
    Config {
        name: "read_committed",
        rr_half: false,
    },
    Config {
        name: "repeatable_read_mix",
        rr_half: true,
    },
];

/// Extents spread over 1997 so updates and scans overlap heavily.
const EXTENTS: [&str; 4] = [
    "05/18/1997, UC, 05/18/1997, NOW",
    "03/01/1997, UC, 03/01/1997, 09/30/1997",
    "06/10/1997, UC, 06/10/1997, NOW",
    "01/05/1997, UC, 01/05/1997, 12/20/1997",
];

const QUERY: &str = "Overlaps(Time_Extent, '01/01/1997, UC, 01/01/1997, NOW')";

/// Deterministic xorshift64* — keeps run-to-run workloads identical.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn fresh_db() -> Database {
    let db = Database::new(DatabaseOptions {
        space: SbspaceOptions {
            pool_pages: 2048,
            lock_timeout: Duration::from_millis(2_000),
            ..Default::default()
        },
        clock: Arc::new(MockClock::new(Day(10_100))),
        deadlock_retries: 10,
        retry_backoff: Duration::from_millis(1),
        scan_workers: 1,
    });
    install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    let setup = db.connect();
    setup
        .exec("CREATE TABLE t (id integer, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    setup
        .exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    // Seed rows give scans and cross-session updates something to hit
    // from the first operation.
    for i in 0..32u64 {
        let e = EXTENTS[(i % 4) as usize];
        setup
            .exec(&format!("INSERT INTO t VALUES ({}, '{e}')", 9_000_000 + i))
            .unwrap();
    }
    db
}

struct Measured {
    stmt_per_sec: f64,
    statements: u64,
    deadlocks: u64,
    retries: u64,
    diff: grt_metrics::MetricsSnapshot,
}

/// `sessions` workers each issue `ops` mixed statements; returns the
/// client-statement throughput and the contention counters the run
/// absorbed. Statements lost to lock timeouts still count as issued —
/// the client waited for them either way.
fn run(db: &Database, sessions: usize, ops: usize, rr_half: bool) -> Measured {
    let conns: Vec<_> = (0..sessions)
        .map(|i| {
            let conn = db.connect();
            if rr_half && i % 2 == 1 {
                conn.exec("SET ISOLATION TO REPEATABLE READ").unwrap();
            }
            conn
        })
        .collect();
    let before = db.metrics_snapshot();
    let barrier = Arc::new(Barrier::new(sessions + 1));
    let start = Instant::now();
    std::thread::scope(|s| {
        for (w, conn) in conns.iter().enumerate() {
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let mut rng = Rng(0x9e37_79b9 + w as u64);
                let mut my_ids: Vec<u64> = Vec::new();
                barrier.wait();
                for op in 0..ops {
                    let r = match rng.below(10) {
                        0..=3 => {
                            let id = w as u64 * 1_000_000 + op as u64;
                            let e = EXTENTS[rng.below(4) as usize];
                            let r = conn.exec(&format!("INSERT INTO t VALUES ({id}, '{e}')"));
                            if r.is_ok() {
                                my_ids.push(id);
                            }
                            r
                        }
                        4..=5 if !my_ids.is_empty() => {
                            let id = my_ids[rng.below(my_ids.len() as u64) as usize];
                            let e = EXTENTS[rng.below(4) as usize];
                            conn.exec(&format!("UPDATE t SET Time_Extent = '{e}' WHERE id = {id}"))
                        }
                        6..=7 if !my_ids.is_empty() => {
                            let i = rng.below(my_ids.len() as u64) as usize;
                            let r = conn.exec(&format!("DELETE FROM t WHERE id = {}", my_ids[i]));
                            if r.is_ok() {
                                my_ids.swap_remove(i);
                            }
                            r
                        }
                        _ => conn.exec(&format!("SELECT id FROM t WHERE {QUERY}")),
                    };
                    match r {
                        Ok(_)
                        | Err(IdsError::Storage(
                            SbError::LockTimeout(_) | SbError::Deadlock(_),
                        )) => {}
                        Err(other) => panic!("session {w}: unexpected error {other}"),
                    }
                }
            });
        }
        barrier.wait();
    });
    let elapsed = start.elapsed();
    let issued = (sessions * ops) as u64;
    let diff = db.metrics_snapshot().since(&before);
    Measured {
        stmt_per_sec: issued as f64 / elapsed.as_secs_f64(),
        statements: issued,
        deadlocks: diff.get("lock.deadlocks"),
        retries: diff.get("stmt.retries"),
        diff,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Quick keeps a subset of the full run's session counts so the CI
    // gate always finds shared (config, sessions) pairs to compare.
    let (session_counts, ops, reps, out_file): (&[usize], usize, usize, &str) = if quick {
        (&[1, 4], 60, 2, "BENCH_concurrency_quick.json")
    } else {
        (&[1, 2, 4, 8], 200, 3, "BENCH_concurrency.json")
    };

    let mut json = String::from("{\n");
    let mut summary: Vec<String> = Vec::new();
    for (ci, cfg) in CONFIGS.iter().enumerate() {
        println!(
            "== {} ({}) ==",
            cfg.name,
            if cfg.rr_half {
                "half the sessions REPEATABLE READ"
            } else {
                "all sessions READ COMMITTED"
            }
        );
        let mut rows = Vec::new();
        for &n in session_counts {
            let mut best: Option<Measured> = None;
            for _ in 0..reps {
                // A fresh database per repetition: tree growth and
                // logically-deleted versions never accumulate across
                // measurements.
                let db = fresh_db();
                let m = run(&db, n, ops, cfg.rr_half);
                assert!(
                    db.space().locks_quiescent(),
                    "bench leaked locks at {n} sessions"
                );
                if best
                    .as_ref()
                    .is_none_or(|b| m.stmt_per_sec > b.stmt_per_sec)
                {
                    best = Some(m);
                }
            }
            let m = best.unwrap();
            println!(
                "  {n} session(s): {:9.1} stmt/s  ({} statements, {} deadlocks, {} retries)",
                m.stmt_per_sec, m.statements, m.deadlocks, m.retries
            );
            println!("{}", CostTrailer::line(&format!("sessions n={n}"), &m.diff));
            rows.push(format!(
                "      {{\"sessions\": {n}, \"stmt_per_sec\": {:.1}, \"statements\": {}, \
                 \"deadlocks\": {}, \"retries\": {}}}",
                m.stmt_per_sec, m.statements, m.deadlocks, m.retries
            ));
            if n == *session_counts.last().unwrap() {
                summary.push(format!(
                    "{}: {n}-session {:.1} stmt/s, {} deadlocks, {} retries",
                    cfg.name, m.stmt_per_sec, m.deadlocks, m.retries
                ));
            }
        }
        let _ = write!(
            json,
            "  \"{}\": {{\n    \"rr_sessions\": \"{}\",\n    \"sessions\": [\n{}\n    ]\n  }}{}\n",
            cfg.name,
            if cfg.rr_half { "half" } else { "none" },
            rows.join(",\n"),
            if ci + 1 < CONFIGS.len() { "," } else { "" }
        );
    }
    json.push('}');
    json.push('\n');
    std::fs::write(out_file, &json).unwrap();
    println!("\nwrote {out_file}");
    for line in summary {
        println!("  {line}");
    }
}
