//! Regenerates every table and figure of *Developing a DataBlade for a
//! New Index* from the running system.
//!
//! ```text
//! cargo run -p grt-bench --bin repro -- all
//! cargo run -p grt-bench --bin repro -- table1 fig6 perf-search
//! ```
//!
//! Exhibit ids match DESIGN.md's per-experiment index.

use grt_bench::{apply_history_gr, apply_history_rstar, run_queries_gr, run_queries_rstar, Table};
use grt_blade::{install_grtree_blade, CurrentTimePolicy, DeletePolicy, GrTreeAmOptions};
use grt_grtree::entry::GrNode;
use grt_grtree::GrTreeOptions;
use grt_ids::engine::Connection;
use grt_ids::{Database, DatabaseOptions};
use grt_rstar::bitemporal::NowStrategy;
use grt_rstar::{Rect2, SpatialPredicate};
use grt_temporal::{
    bound_entries, Case, Day, MockClock, Predicate, RegionSpec, TimeExtent, TtEnd, VtEnd,
};
use grt_workload::{History, HistoryParams, QueryKind, QueryParams, QuerySet};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL_RUNNERS.iter().map(|(n, _)| *n).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in wanted {
        let runner = ALL_RUNNERS
            .iter()
            .find(|(name, _)| *name == id)
            .unwrap_or_else(|| {
                let known: Vec<&str> = ALL_RUNNERS.iter().map(|(n, _)| *n).collect();
                eprintln!("unknown exhibit {id:?}; known: {known:?}");
                std::process::exit(2);
            });
        println!("\n==================== {id} ====================");
        (runner.1)();
    }
}

const ALL_RUNNERS: [(&str, fn()); 21] = [
    ("table1", table1),
    ("fig1", fig1),
    ("fig2", fig2),
    ("fig3", fig3),
    ("table2", table2),
    ("fig4", fig4),
    ("fig5", fig5),
    ("fig6", fig6),
    ("fig7", fig7),
    ("table3", table3),
    ("table4", table4),
    ("table5", table5),
    ("perf-search", perf_search),
    ("perf-insert", perf_insert),
    ("perf-quality", perf_quality),
    ("abl-delete", abl_delete),
    ("abl-storage", abl_storage),
    ("abl-curtime", abl_curtime),
    ("perf-pool", perf_pool),
    ("abl-bounds", abl_bounds),
    ("abl-timeparam", abl_timeparam),
];

// ---------------------------------------------------------------------
// shared setup
// ---------------------------------------------------------------------

fn month(m: u32, y: i32) -> Day {
    Day::from_ymd(y, m, 1).unwrap()
}

fn blade_db(opts: GrTreeAmOptions) -> (Database, MockClock) {
    let clock = MockClock::new(month(1, 1997));
    let db = Database::new(DatabaseOptions {
        clock: Arc::new(clock.clone()),
        ..Default::default()
    });
    install_grtree_blade(&db, opts).unwrap();
    (db, clock)
}

fn small_tree_opts() -> GrTreeAmOptions {
    GrTreeAmOptions {
        tree: GrTreeOptions {
            max_entries: 8,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Plays the paper's Table 1 history; leaves the clock at 9/97.
fn play_empdep(conn: &Connection, clock: &MockClock) {
    conn.exec("CREATE TABLE Employees (Name text, Department text, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec(
        "CREATE INDEX grt_index ON Employees(Time_Extent grt_opclass) USING grtree_am IN spc",
    )
    .unwrap();
    let ins = |name: &str, dept: &str, extent: &str| {
        conn.exec(&format!(
            "INSERT INTO Employees VALUES ('{name}', '{dept}', '{extent}')"
        ))
        .unwrap();
    };
    clock.set(month(3, 1997));
    ins("Tom", "Management", "3/97, UC, 6/97, 8/97");
    ins("Julie", "Sales", "3/97, UC, 3/97, NOW");
    clock.set(month(4, 1997));
    ins("John", "Advertising", "4/97, UC, 3/97, 5/97");
    clock.set(month(5, 1997));
    ins("Jane", "Sales", "5/97, UC, 5/97, NOW");
    ins("Michelle", "Management", "5/97, UC, 3/97, NOW");
    clock.set(month(8, 1997));
    conn.exec(
        "UPDATE Employees SET Time_Extent = '3/97, 07/31/1997, 6/97, 8/97' WHERE Name = 'Tom'",
    )
    .unwrap();
    conn.exec(
        "UPDATE Employees SET Time_Extent = '3/97, 07/31/1997, 3/97, NOW' WHERE Name = 'Julie'",
    )
    .unwrap();
    ins("Julie", "Sales", "8/97, UC, 3/97, 7/97");
    clock.set(month(9, 1997));
}

fn empdep_extents() -> Vec<(&'static str, TimeExtent)> {
    let parse = |s: &str| TimeExtent::parse(s).unwrap();
    vec![
        ("John", parse("4/97, UC, 3/97, 5/97")),
        ("Tom", parse("3/97, 07/31/1997, 6/97, 8/97")),
        ("Jane", parse("5/97, UC, 5/97, NOW")),
        ("Julie (1)", parse("3/97, 07/31/1997, 3/97, NOW")),
        ("Julie (2)", parse("8/97, UC, 3/97, 7/97")),
        ("Michelle", parse("5/97, UC, 3/97, NOW")),
    ]
}

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

fn table1() {
    println!("Table 1: the EmpDep relation, built through SQL with a GR-tree index\n");
    let (db, clock) = blade_db(small_tree_opts());
    let conn = db.connect();
    play_empdep(&conn, &clock);
    let r = conn
        .exec("SELECT Name, Department, Time_Extent FROM Employees")
        .unwrap();
    println!("{}", r.to_table());
    println!(
        "(CT = 9/97; month values are first-of-month days, so a logical\n\
         deletion at 8/97 stamps TTend = 07/31/1997, the paper's '7/97'.)"
    );
}

// ---------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------

fn ascii_region(extent: &TimeExtent, ct: Day) -> String {
    let region = extent.region(ct);
    let cell = |m_t: u32, m_v: u32| {
        let t = month(m_t, 1997);
        let v = month(m_v, 1997);
        if region.contains_point(t, v) {
            '#'
        } else if m_t == m_v {
            '.'
        } else {
            ' '
        }
    };
    let mut out = String::new();
    for m_v in (1..=12).rev() {
        out.push_str(&format!("{m_v:>2}|"));
        for m_t in 1..=12 {
            out.push(cell(m_t, m_v));
        }
        out.push('\n');
    }
    out.push_str("   ");
    out.push_str(&"-".repeat(12));
    out.push_str("\n    month of 1997 (tt ->, vt ^); '#' in region, '.' vt = tt diagonal\n");
    out
}

fn fig1() {
    println!("Figure 1: bitemporal regions of the EmpDep tuples at CT = 9/97\n");
    let ct = month(9, 1997);
    for (name, extent) in empdep_extents() {
        println!(
            "{name}: ({extent})  ->  {} [{}]",
            extent.region(ct),
            extent.case()
        );
        println!("{}", ascii_region(&extent, ct));
    }
    let later = month(12, 1997);
    println!("Growth between 9/97 and 12/97 (now-relative regions keep extending):");
    for (name, extent) in empdep_extents() {
        let grew = extent.region(later).area() > extent.region(ct).area();
        println!("  {name:<12} grew: {grew}");
    }
}

// ---------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------

fn fig2() {
    println!("Figure 2: possible combinations of time attributes (derived)\n");
    let mut t = Table::new(&["", "TTbegin", "TTend", "VTbegin", "VTend", "constraint"]);
    let combos = [
        (Case::Case1, "tt1", "UC", "vt1", "vt2", ""),
        (Case::Case2, "tt1", "tt2", "vt1", "vt2", ""),
        (Case::Case3, "tt1", "UC", "vt1", "NOW", "(tt1 = vt1)"),
        (Case::Case4, "tt1", "tt2", "vt1", "NOW", "(tt1 = vt1)"),
        (Case::Case5, "tt1", "UC", "vt1", "NOW", "(tt1 > vt1)"),
        (Case::Case6, "tt1", "tt2", "vt1", "NOW", "(tt1 > vt1)"),
    ];
    for (case, a, b, c, d, e) in combos {
        let witness = match case {
            Case::Case1 => {
                TimeExtent::from_parts(Day(10), TtEnd::Uc, Day(5), VtEnd::Ground(Day(8)))
            }
            Case::Case2 => TimeExtent::from_parts(
                Day(10),
                TtEnd::Ground(Day(20)),
                Day(5),
                VtEnd::Ground(Day(8)),
            ),
            Case::Case3 => TimeExtent::from_parts(Day(10), TtEnd::Uc, Day(10), VtEnd::Now),
            Case::Case4 => {
                TimeExtent::from_parts(Day(10), TtEnd::Ground(Day(20)), Day(10), VtEnd::Now)
            }
            Case::Case5 => TimeExtent::from_parts(Day(10), TtEnd::Uc, Day(7), VtEnd::Now),
            Case::Case6 => {
                TimeExtent::from_parts(Day(10), TtEnd::Ground(Day(20)), Day(7), VtEnd::Now)
            }
        }
        .unwrap();
        assert_eq!(witness.case(), case, "classification mismatch");
        t.push(&[&format!("{case}"), a, b, c, d, e]);
    }
    println!("{t}");
    println!("Every row verified against TimeExtent::case() with a witness extent.");
}

// ---------------------------------------------------------------------
// Figure 3
// ---------------------------------------------------------------------

fn fig3() {
    println!("Figure 3: an R*-tree whose query rectangle overlaps two node MBRs\nbut finds qualifying data in only one\n");
    let (sb, mut tree) = grt_bench::fresh_rstar_tree(1024, 4);
    let data = [
        Rect2::new(0, 10, 0, 8),
        Rect2::new(2, 6, 20, 28),
        Rect2::new(12, 22, 2, 12),
        Rect2::new(60, 72, 50, 58),
        Rect2::new(64, 70, 70, 82),
        Rect2::new(80, 92, 60, 66),
    ];
    for (i, r) in data.iter().enumerate() {
        tree.insert(*r, i as u64).unwrap();
    }
    let root = tree.read_node(tree.root_page()).unwrap();
    let mut t = Table::new(&["node", "MBR", "entries", "dead space", "overlap"]);
    for (i, e) in root.entries.iter().enumerate() {
        let child = tree.read_node(e.payload as u32).unwrap();
        let covered: i128 = child.entries.iter().map(|c| c.rect.area()).sum();
        let overlap = grt_rstar::stats::pairwise_overlap(
            &child.entries.iter().map(|c| c.rect).collect::<Vec<_>>(),
        );
        t.push(&[
            format!("R{}", i + 1),
            e.rect.to_string(),
            child.entries.len().to_string(),
            (e.rect.area() - covered).max(0).to_string(),
            overlap.to_string(),
        ]);
    }
    println!("{t}");
    let query = Rect2::new(8, 16, 14, 18);
    let before = sb.stats().snapshot();
    let hits = tree.search(SpatialPredicate::Overlap, &query).unwrap();
    let reads = sb.stats().snapshot().since(&before).logical_reads;
    println!(
        "query {query}: visited {reads} nodes (logical reads), {} qualifying entries",
        hits.len()
    );
    println!(
        "-> the query overlapped {} of the root's MBRs but matched {} objects:\n\
         dead space and overlap cause page accesses that find nothing —\n\
         the 'goodness' criteria of Section 3.",
        root.entries
            .iter()
            .filter(|e| e.rect.overlaps(&query))
            .count(),
        hits.len()
    );
}

// ---------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------

fn table2() {
    println!("Table 2: tasks of the access-method purpose functions, from SYSAMS\n");
    let (db, _clock) = blade_db(small_tree_opts());
    let (_, rows) = db.catalog_dump("sysams").unwrap();
    let bindings = rows[0][1].to_string();
    let groups: [(&str, &[&str]); 7] = [
        ("Creating and dropping an index", &["am_create", "am_drop"]),
        ("Opening and closing an index", &["am_open", "am_close"]),
        (
            "Scanning an index for qualifying records",
            &["am_beginscan", "am_endscan", "am_rescan", "am_getnext"],
        ),
        (
            "Adding, deleting, and updating records",
            &["am_insert", "am_delete", "am_update"],
        ),
        ("Determining the cost for a scan", &["am_scancost"]),
        ("Updating statistics", &["am_stats"]),
        ("Checking index consistency", &["am_check"]),
    ];
    let mut t = Table::new(&["Task", "Purpose functions (slot = registered UDR)"]);
    for (task, slots) in groups {
        let fns: Vec<String> = slots
            .iter()
            .map(|s| {
                bindings
                    .split(", ")
                    .find(|b| b.starts_with(&format!("{s}=")))
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| format!("{s}=?"))
            })
            .collect();
        t.push(&[task.to_string(), fns.join(", ")]);
    }
    println!("{t}");
}

// ---------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------

fn fig4() {
    println!("Figure 4: minimum bounding regions of three node contents\n");
    let ct = Day(100);
    let leaf = |ttb: i32, tte: Option<i32>, vtb: i32, vte: Option<i32>| {
        RegionSpec::leaf(
            Day(ttb),
            tte.map_or(TtEnd::Uc, |x| TtEnd::Ground(Day(x))),
            Day(vtb),
            vte.map_or(VtEnd::Now, |x| VtEnd::Ground(Day(x))),
        )
    };
    let cases = [
        (
            "(a) growing stair + rectangle above the diagonal",
            vec![leaf(50, None, 50, None), leaf(60, Some(80), 0, Some(95))],
        ),
        (
            "(b) regions all under the y = x line",
            vec![leaf(10, Some(60), 10, None), leaf(20, None, 15, None)],
        ),
        (
            "(c) small growing stair hidden in a tall fixed rectangle",
            vec![leaf(50, None, 50, None), leaf(60, Some(80), 0, Some(200))],
        ),
    ];
    let mut t = Table::new(&[
        "node content",
        "bound",
        "Rect",
        "Hidden",
        "resolved at ct=100",
    ]);
    for (name, children) in &cases {
        let b = bound_entries(children, ct);
        t.push(&[
            name.to_string(),
            b.to_string(),
            b.rect.to_string(),
            b.hidden.to_string(),
            b.resolve(ct).to_string(),
        ]);
    }
    println!("{t}");
    let (_, children) = &cases[2];
    let b = bound_entries(children, ct);
    if let VtEnd::Ground(v) = b.vt_end {
        println!(
            "the hidden stair outgrows its rectangle after day {}; the Hidden\n\
             adjustment then treats the entry as growing:",
            v.0
        );
        println!("  at day {}: {}", v.0, b.resolve(v));
        println!("  at day {}: {}", v.0 + 1, b.resolve(v.succ()));
    }
}

// ---------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------

fn dump_gr(tree: &grt_grtree::GrTree, page: u32, depth: usize, ct: Day) {
    let node = tree.read_node(page).unwrap();
    let pad = "  ".repeat(depth);
    match node {
        GrNode::Leaf(entries) => {
            println!("{pad}leaf p{page}:");
            for e in entries {
                println!("{pad}  ({}) -> row {}", e.extent, e.rowid);
            }
        }
        GrNode::Internal { level, entries } => {
            println!("{pad}internal p{page} (level {level}):");
            for e in entries {
                println!(
                    "{pad}  {} [Rect={} Hidden={}] -> p{}  resolves to {}",
                    e.spec,
                    e.spec.rect,
                    e.spec.hidden,
                    e.child,
                    e.spec.resolve(ct)
                );
                dump_gr(tree, e.child, depth + 2, ct);
            }
        }
    }
}

fn fig5() {
    println!("Figure 5: GR-tree structure over the EmpDep extents (fan-out 4)\n");
    let ct = month(9, 1997);
    let (_sb, mut tree) = grt_bench::fresh_gr_tree(1024, 4);
    for (i, (_, e)) in empdep_extents().into_iter().enumerate() {
        tree.insert(e, i as u64, ct).unwrap();
    }
    for i in 0..8 {
        let e = TimeExtent::insert(ct, month(9, 1997).plus(-i * 15), VtEnd::Now).unwrap();
        tree.insert(e, 100 + i as u64, ct).unwrap();
    }
    tree.check(ct).unwrap();
    dump_gr(&tree, tree.root_page(), 0, ct);
    let q = tree.quality(ct).unwrap();
    println!(
        "\nbounds: {} stair, {} hidden, {} growing-rectangle (of {} internal entries)",
        q.stair_bounds,
        q.hidden_bounds,
        q.growing_rect_bounds,
        q.levels.iter().skip(1).map(|l| l.entries).sum::<u64>()
    );
}

// ---------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------

fn fig6() {
    println!("Figure 6: purpose functions called for INSERT and SELECT\n");
    let (db, clock) = blade_db(small_tree_opts());
    let conn = db.connect();
    play_empdep(&conn, &clock);
    let trace = db.trace();
    trace.on("AM", 1);
    trace.take();
    conn.exec("INSERT INTO Employees VALUES ('Kai', 'Sales', '9/97, UC, 9/97, NOW')")
        .unwrap();
    let insert_calls: Vec<String> = trace.take().into_iter().map(|e| e.message).collect();
    println!("(a) INSERT:  {}", insert_calls.join(" -> "));
    conn.exec("SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '3/97, UC, 3/97, NOW')")
        .unwrap();
    let select_calls: Vec<String> = trace.take().into_iter().map(|e| e.message).collect();
    println!("(b) SELECT:  {}", select_calls.join(" -> "));
    println!("\n(grt_scancost precedes the scan: the optimizer prices the virtual\nindex before choosing it.)");
}

// ---------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------

fn fig7() {
    println!("Figure 7: one access method, several operator classes\n");
    let (db, _clock) = blade_db(small_tree_opts());
    let conn = db.connect();
    conn.exec("CREATE OPCLASS grt_overlap_only FOR grtree_am STRATEGIES(Overlaps)")
        .unwrap();
    let (hdr, rows) = db.catalog_dump("sysopclasses").unwrap();
    let mut t = Table::new(&hdr.iter().map(String::as_str).collect::<Vec<_>>());
    for r in rows {
        let cells: Vec<String> = r.iter().map(|v| v.to_string()).collect();
        t.row(&cells);
    }
    println!("{t}");
    println!(
        "An index created with grt_overlap_only will not serve Equal()\n\
         queries — and (Section 5.2) there is no way to tell the optimizer\n\
         that Equal implies Overlaps: only negator/commutator links exist."
    );
}

// ---------------------------------------------------------------------
// Table 3 + Figure 8
// ---------------------------------------------------------------------

fn table3() {
    println!("Table 3 / Figure 8: why the intervals cannot be checked separately\n");
    let (db, clock) = blade_db(small_tree_opts());
    let conn = db.connect();
    play_empdep(&conn, &clock);
    let julie = TimeExtent::parse("3/97, 07/31/1997, 3/97, NOW").unwrap();
    let ct = month(9, 1997);
    println!(
        "Julie's record: ({julie}), a stopped stair at CT = 9/97: {}",
        julie.region(ct)
    );
    println!("Query: who worked in Sales during 7/97, as known during 5/97?");
    println!("       the bitemporal point (tt = 5/97, vt = 7/97)\n");
    let tt_q = month(5, 1997);
    let vt_q = month(7, 1997);
    let tt_overlap = julie.tt_begin <= tt_q
        && tt_q
            <= match julie.tt_end {
                TtEnd::Ground(d) => d,
                TtEnd::Uc => ct,
            };
    let vt_overlap = julie.vt_begin <= vt_q
        && vt_q
            <= match julie.vt_end {
                VtEnd::Ground(d) => d,
                VtEnd::Now => ct,
            };
    println!(
        "decomposed f1(transaction) AND f2(valid): tt overlap = {tt_overlap}, \
         vt overlap = {vt_overlap} -> Julie WRONGLY included"
    );
    let exact = Predicate::Overlaps.eval(
        &julie,
        &TimeExtent::parse("5/97, 5/97, 7/97, 7/97").unwrap(),
        ct,
    );
    println!("exact bitemporal Overlaps on the stair shape: {exact} -> Julie excluded");
    let q = "SELECT Name FROM Employees \
             WHERE Overlaps(Time_Extent, '5/97, 5/97, 7/97, 7/97') AND Department = 'Sales'";
    let with_index = conn.exec(q).unwrap();
    conn.exec("DROP INDEX grt_index").unwrap();
    let without = conn.exec(q).unwrap();
    println!(
        "SQL with GR-tree index: {} rows; sequential scan: {} rows (both empty, both correct)",
        with_index.rows.len(),
        without.rows.len()
    );
}

// ---------------------------------------------------------------------
// Table 4
// ---------------------------------------------------------------------

fn table4() {
    println!("Table 4: implementation tasks — the paper's C/C++ prototype vs this reproduction\n");
    let loc = |src: &str| src.lines().filter(|l| !l.trim().is_empty()).count();
    let rows: [(&str, &str, &str, usize); 6] = [
        (
            "Opaque type structure + UC/NOW support functions",
            "average+low",
            "30",
            loc(include_str!("../../../blade/src/extent_type.rs"))
                + loc(include_str!("../../../temporal/src/extent.rs")),
        ),
        (
            "Operations on the opaque type (strategy predicates)",
            "low",
            "30",
            loc(include_str!("../../../temporal/src/predicate.rs")),
        ),
        (
            "Access method purpose functions",
            "high",
            "1020",
            loc(include_str!("../../../blade/src/grtree_am.rs")),
        ),
        (
            "BLOB manipulation functions",
            "average",
            "280",
            loc(include_str!("../../../sbspace/src/space.rs")),
        ),
        (
            "Qualification-descriptor manipulation",
            "average",
            "120",
            loc(include_str!("../../../blade/src/qual.rs")),
        ),
        (
            "The GR-tree core itself (pre-existing C++ in the paper)",
            "high",
            "n/a",
            loc(include_str!("../../../grtree/src/tree.rs"))
                + loc(include_str!("../../../grtree/src/entry.rs"))
                + loc(include_str!("../../../grtree/src/cursor.rs")),
        ),
    ];
    let mut t = Table::new(&["Task", "Paper complexity", "Paper LOC", "This repo LOC"]);
    for (task, cx, ploc, rloc) in rows {
        t.push(&[
            task.to_string(),
            cx.to_string(),
            ploc.to_string(),
            rloc.to_string(),
        ]);
    }
    println!("{t}");
    println!("(Rust LOC include tests and doc comments; the paper counted bare C.)");
}

// ---------------------------------------------------------------------
// Table 5
// ---------------------------------------------------------------------

fn table5() {
    println!("Table 5: observed steps of each grt_* purpose function (trace class GRT)\n");
    let (db, clock) = blade_db(small_tree_opts());
    let conn = db.connect();
    let trace = db.trace();
    trace.on("GRT", 2);
    play_empdep(&conn, &clock);
    conn.exec("SELECT Name FROM Employees WHERE Overlaps(Time_Extent, '3/97, UC, 3/97, NOW')")
        .unwrap();
    conn.exec("DELETE FROM Employees WHERE Equal(Time_Extent, '5/97, UC, 5/97, NOW')")
        .unwrap();
    conn.exec("DROP INDEX grt_index").unwrap();
    let mut by_fn: Vec<(String, Vec<String>)> = Vec::new();
    for ev in trace.take() {
        let (f, step) = ev.message.split_once(": ").unwrap_or((&ev.message, ""));
        match by_fn.iter_mut().find(|(name, _)| name == f) {
            Some((_, steps)) => {
                if !steps.contains(&step.to_string()) {
                    steps.push(step.to_string());
                }
            }
            None => by_fn.push((f.to_string(), vec![step.to_string()])),
        }
    }
    for (f, steps) in by_fn {
        println!("{f}:");
        for s in steps {
            println!("   {s}");
        }
    }
}

// ---------------------------------------------------------------------
// Performance-shape experiments
// ---------------------------------------------------------------------

fn standard_history(frac: f64) -> History {
    History::generate(HistoryParams {
        inserts: 3000,
        now_relative_fraction: frac,
        delete_rate: 0.3,
        days_per_insert: 1,
        seed: 11,
        ..Default::default()
    })
}

fn standard_queries(h: &History) -> Vec<TimeExtent> {
    QuerySet::generate(
        QueryParams {
            count: 150,
            kind: QueryKind::Window,
            tt_range: (h.params.start, h.end),
            window: 20,
            seed: 5,
        },
        h.end,
    )
    .queries
}

fn perf_search() {
    println!("perf-search: search cost vs fraction of now-relative data\n");
    println!(
        "(3000-insert histories, 150 window queries; baseline reads include one\n\
         base-table fetch per refinement candidate)\n"
    );
    let mut t = Table::new(&[
        "now-frac",
        "GR reads/q",
        "MaxTS reads/q",
        "Horizon reads/q",
        "GR cand/res",
        "MaxTS cand/res",
        "results/q",
    ]);
    for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let h = standard_history(frac);
        let queries = standard_queries(&h);
        let ct = h.end;
        let gr = apply_history_gr(&h, 1 << 16, 42);
        let maxts = apply_history_rstar(&h, NowStrategy::MaxTimestamp, 1 << 16, 42);
        let horizon = apply_history_rstar(&h, NowStrategy::Horizon { slack: 365 }, 1 << 16, 42);
        let a = run_queries_gr(&gr, &queries, ct);
        let b = run_queries_rstar(&maxts, &queries, ct);
        let c = run_queries_rstar(&horizon, &queries, ct);
        assert_eq!(a.results, b.results, "answer mismatch at frac {frac}");
        assert_eq!(a.results, c.results, "answer mismatch at frac {frac}");
        t.push(&[
            format!("{frac:.2}"),
            format!("{:.1}", a.reads_per_query()),
            format!("{:.1}", b.reads_per_query()),
            format!("{:.1}", c.reads_per_query()),
            format!("{:.2}", a.candidate_ratio()),
            format!("{:.2}", b.candidate_ratio()),
            format!("{:.1}", a.results as f64 / a.queries as f64),
        ]);
    }
    println!("{t}");
    println!(
        "Shape check (the GR-tree paper's claim): the GR-tree's cost stays flat\n\
         as the now-relative fraction rises; the max-timestamp baseline degrades\n\
         because every open tuple becomes an end-of-time rectangle; the horizon\n\
         baseline stays close on reads but pays refresh writes (see perf-insert)."
    );
}

fn perf_insert() {
    println!("perf-insert: maintenance cost of the same history\n");
    let mut t = Table::new(&[
        "now-frac",
        "GR writes",
        "MaxTS writes",
        "Horizon writes",
        "Horizon refreshes",
    ]);
    for frac in [0.0, 0.5, 1.0] {
        let h = standard_history(frac);
        let gr = apply_history_gr(&h, 1 << 16, 42);
        let maxts = apply_history_rstar(&h, NowStrategy::MaxTimestamp, 1 << 16, 42);
        let horizon = apply_history_rstar(&h, NowStrategy::Horizon { slack: 365 }, 1 << 16, 42);
        t.push(&[
            format!("{frac:.2}"),
            gr.build_writes.to_string(),
            maxts.build_writes.to_string(),
            horizon.build_writes.to_string(),
            horizon.refreshed_entries.to_string(),
        ]);
    }
    println!("{t}");
    println!("The horizon baseline's extra writes are the periodic refreshes the\nGR-tree never needs: its entries grow in place.");
}

fn perf_quality() {
    println!("perf-quality: dead space and overlap (Section 3's goodness criteria)\n");
    let mut t = Table::new(&[
        "now-frac",
        "GR dead",
        "GR overlap",
        "MaxTS dead",
        "MaxTS overlap",
        "GR pages",
        "MaxTS pages",
    ]);
    for frac in [0.0, 0.5, 1.0] {
        let h = standard_history(frac);
        let ct = h.end;
        let gr = apply_history_gr(&h, 1 << 16, 42);
        let maxts = apply_history_rstar(&h, NowStrategy::MaxTimestamp, 1 << 16, 42);
        let gq = gr.tree.quality(ct).unwrap();
        let rq = maxts.tree.quality().unwrap();
        t.push(&[
            format!("{frac:.2}"),
            gq.total_dead_space().to_string(),
            gq.total_overlap().to_string(),
            rq.total_dead_space().to_string(),
            rq.total_overlap().to_string(),
            gr.tree.pages().to_string(),
            maxts.tree.pages().to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "Max-timestamp rectangles reach the end of time, so dead space and\n\
         overlap explode with the now-relative fraction, while the GR-tree's\n\
         stair and hidden bounds track the data."
    );
}

fn perf_pool() {
    println!("perf-pool: physical reads per query vs buffer-pool size\n");
    println!("(0.75 now-relative history; physical reads = pool misses, the\ndisk-I/O proxy; logical behaviour is unchanged)\n");
    let h = standard_history(0.75);
    let queries = standard_queries(&h);
    let ct = h.end;
    let mut t = Table::new(&[
        "pool pages",
        "GR phys/q",
        "MaxTS phys/q",
        "GR pages",
        "MaxTS pages",
    ]);
    for pool in [32usize, 64, 128, 1 << 16] {
        let gr = apply_history_gr(&h, pool, 42);
        let maxts = apply_history_rstar(&h, NowStrategy::MaxTimestamp, pool, 42);
        let a = run_queries_gr(&gr, &queries, ct);
        let b = run_queries_rstar(&maxts, &queries, ct);
        assert_eq!(a.results, b.results);
        t.push(&[
            if pool == 1 << 16 {
                "unbounded".to_string()
            } else {
                pool.to_string()
            },
            format!("{:.1}", a.physical_reads as f64 / a.queries as f64),
            format!("{:.1}", b.physical_reads as f64 / b.queries as f64),
            gr.tree.pages().to_string(),
            maxts.tree.pages().to_string(),
        ]);
    }
    println!("{t}");
    println!("With a small pool the baseline's broader traversals also miss the\ncache more: the logical-read gap becomes a physical-read gap.");
}

fn abl_delete() {
    println!("abl-delete: scan-restart policies during index-driven deletion (Section 5.5)\n");
    let mut t = Table::new(&["policy", "logical reads", "getnext calls", "result"]);
    for (name, policy) in [
        (
            "restart-on-condense (paper)",
            DeletePolicy::RestartOnCondense,
        ),
        ("restart-always", DeletePolicy::RestartAlways),
    ] {
        let (db, clock) = blade_db(GrTreeAmOptions {
            tree: GrTreeOptions {
                max_entries: 8,
                ..Default::default()
            },
            delete_policy: policy,
            ..Default::default()
        });
        let conn = db.connect();
        conn.exec("CREATE TABLE t (id integer, pad text, Time_Extent GRT_TimeExtent_t)")
            .unwrap();
        conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
            .unwrap();
        // Wide rows make the heap big enough that the optimizer picks
        // the index path (as it would on a real table).
        let pad = "x".repeat(400);
        for i in 0..400i32 {
            clock.set(Day(11_000 + i));
            let (y, m, d) = Day(11_000 + i).to_ymd();
            conn.exec(&format!(
                "INSERT INTO t VALUES ({i}, '{pad}', '{m:02}/{d:02}/{y}, UC, {m:02}/{d:02}/{y}, NOW')"
            ))
            .unwrap();
        }
        clock.set(Day(12_000));
        let trace = db.trace();
        trace.on("AM", 1);
        trace.take();
        let before = db.io_stats().snapshot();
        let r = conn
            .exec(
                "DELETE FROM t WHERE Overlaps(Time_Extent, \
                 '02/18/2000, 12/31/2000, 02/01/2000, 12/31/2000')",
            )
            .unwrap();
        let delta = db.io_stats().snapshot().since(&before);
        let getnexts = trace
            .take()
            .into_iter()
            .filter(|e| e.message == "grt_getnext")
            .count();
        assert!(getnexts > 0, "the DELETE must run through the index");
        t.push(&[
            name.to_string(),
            delta.logical_reads.to_string(),
            getnexts.to_string(),
            r.message,
        ]);
    }
    println!("{t}");
    println!("Restart-always re-traverses from the root after every deletion;\nrestart-on-condense only when the tree actually condensed.");
}

fn abl_storage() {
    println!("abl-storage: large-object granularity (the Section 5.3 design space)\n");
    println!(
        "The index is partitioned across K large objects (one subtree each);\n\
         K = 1 is the paper's choice, large K approaches LO-per-node.\n\
         Costs for a 3000-insert build plus 150 queries:\n"
    );
    let h = standard_history(0.5);
    let queries = standard_queries(&h);
    let ct = h.end;
    let mut t = Table::new(&["LOs", "lo opens", "logical reads", "pointer bytes"]);
    for k in [1usize, 4, 16] {
        let sb = grt_sbspace::Sbspace::mem(grt_sbspace::SbspaceOptions {
            pool_pages: 1 << 16,
            ..Default::default()
        });
        let txn = sb.begin(Default::default());
        let mut trees = Vec::new();
        for _ in 0..k {
            let lo = sb.create_lo(&txn).unwrap();
            let handle = sb
                .open_lo(&txn, lo, grt_sbspace::LockMode::Exclusive)
                .unwrap();
            trees.push(
                grt_grtree::GrTree::create(
                    handle,
                    GrTreeOptions {
                        max_entries: 42,
                        ..Default::default()
                    },
                )
                .unwrap(),
            );
        }
        std::mem::forget(txn);
        let before = sb.stats().snapshot();
        for (day, ev) in &h.events {
            match ev {
                grt_workload::HistoryEvent::Insert { id, extent } => {
                    trees[(*id as usize) % k]
                        .insert(*extent, *id, *day)
                        .unwrap();
                }
                grt_workload::HistoryEvent::LogicalDelete { id, old, new } => {
                    let tr = &mut trees[(*id as usize) % k];
                    assert!(tr.delete(old, *id, *day).unwrap().found);
                    tr.insert(*new, *id, *day).unwrap();
                }
            }
        }
        for q in &queries {
            for tr in &trees {
                let _ = tr.search(Predicate::Overlaps, q, ct).unwrap();
            }
        }
        let delta = sb.stats().snapshot().since(&before);
        let ptr_bytes = if k == 1 { 4 } else { 8 };
        t.push(&[
            k.to_string(),
            (delta.lo_opens + (queries.len() * k) as u64).to_string(),
            delta.logical_reads.to_string(),
            ptr_bytes.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "More LOs mean finer locking (measured by the concurrency bench) but\n\
         every statement must open every partition, and cross-LO child pointers\n\
         are 'relatively large' — the paper's argument against LO-per-node."
    );
}

fn abl_bounds() {
    println!("abl-bounds: the GR-tree's stair/hidden bounds vs plain growing\nrectangles (what a NOW-aware index without the stair encoding would use)\n");
    let mut t = Table::new(&[
        "now-frac",
        "GR reads/q",
        "rect-only reads/q",
        "GR dead",
        "rect-only dead",
        "GR stair bounds",
    ]);
    for frac in [0.5, 1.0] {
        let h = standard_history(frac);
        let queries = standard_queries(&h);
        let ct = h.end;
        let gr = apply_history_gr(&h, 1 << 16, 42);
        let rect_only = grt_bench::apply_history_gr_opts(
            &h,
            1 << 16,
            GrTreeOptions {
                max_entries: 42,
                rectangle_only: true,
                ..Default::default()
            },
        );
        let a = run_queries_gr(&gr, &queries, ct);
        let b = run_queries_gr(&rect_only, &queries, ct);
        assert_eq!(a.results, b.results, "ablation must not change answers");
        let gq = gr.tree.quality(ct).unwrap();
        let rq = rect_only.tree.quality(ct).unwrap();
        t.push(&[
            format!("{frac:.2}"),
            format!("{:.1}", a.reads_per_query()),
            format!("{:.1}", b.reads_per_query()),
            gq.total_dead_space().to_string(),
            rq.total_dead_space().to_string(),
            gq.stair_bounds.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "Growing-rectangle bounds cover the triangle above the diagonal that\n\
         no stair-shaped data ever occupies: pure dead space, more subtree\n\
         visits — the structural reason 'the GR-tree is better' (Section 3)."
    );
}

fn abl_timeparam() {
    println!("abl-timeparam: the GR-tree insertion algorithms' time parameter\n");
    let mut t = Table::new(&["time_param (days)", "reads/q", "dead space", "overlap"]);
    let h = standard_history(0.8);
    let queries = standard_queries(&h);
    let ct = h.end;
    for tp in [0u32, 30, 120, 365] {
        let fx = grt_bench::apply_history_gr_opts(
            &h,
            1 << 16,
            GrTreeOptions {
                max_entries: 42,
                time_param: tp,
                ..Default::default()
            },
        );
        let a = run_queries_gr(&fx, &queries, ct);
        let q = fx.tree.quality(ct).unwrap();
        t.push(&[
            tp.to_string(),
            format!("{:.1}", a.reads_per_query()),
            q.total_dead_space().to_string(),
            q.total_overlap().to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "Penalties evaluated at ct + time_param charge growing entries for\n\
         their near-future extent; 0 reproduces a growth-blind R*-tree\n\
         placement, large values over-penalise growers."
    );
}

fn abl_curtime() {
    println!("abl-curtime: when is the current time sampled? (Section 5.4)\n");
    let clock = MockClock::new(Day(1000));
    let mut ctx = grt_ids::AmContext::for_tests();
    ctx.clock = Arc::new(clock.clone());
    use grt_blade::curtime::resolve_current_time;
    use grt_ids::session::MemDuration;
    let mut t = Table::new(&[
        "policy",
        "sample 1",
        "clock +1, same stmt",
        "new stmt, clock +2",
        "after txn end",
    ]);
    for (name, policy) in [
        ("per-call", CurrentTimePolicy::PerCall),
        ("per-statement", CurrentTimePolicy::PerStatement),
        ("per-transaction", CurrentTimePolicy::PerTransaction),
    ] {
        clock.set(Day(1000));
        ctx.session.clear_duration(MemDuration::PerStatement);
        ctx.session.clear_duration(MemDuration::PerTransaction);
        let s1 = resolve_current_time(policy, &ctx).0;
        clock.advance(1);
        let s2 = resolve_current_time(policy, &ctx).0;
        ctx.session.clear_duration(MemDuration::PerStatement);
        clock.advance(1);
        let s3 = resolve_current_time(policy, &ctx).0;
        ctx.session.clear_duration(MemDuration::PerTransaction);
        let s4 = resolve_current_time(policy, &ctx).0;
        t.push(&[
            name.to_string(),
            s1.to_string(),
            s2.to_string(),
            s3.to_string(),
            s4.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "Per-call time moves inside a statement (a scan could watch a region\n\
         grow mid-query); per-statement is stable within a statement; per-\n\
         transaction is stable until the transaction-end callback clears the\n\
         session's named memory — the design the paper's DataBlade uses."
    );
}
