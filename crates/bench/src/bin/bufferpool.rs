//! Buffer-pool and group-commit benchmark: baseline (one shard, no
//! group commit — the pre-rework configuration) versus the sharded
//! clock pool with zero-copy pinned reads and WAL group commit.
//!
//! ```text
//! cargo run --release -p grt-bench --bin bufferpool [-- --quick]
//! ```
//!
//! Emits `BENCH_bufferpool.json` in the working directory (with
//! `--quick`: fewer rounds and repetitions, written to
//! `BENCH_bufferpool_quick.json` for the CI `bench_gate`) with three
//! sections per configuration:
//!
//! * `readers`: ns per pinned page read at 1/2/4/8 concurrent workers
//!   running a read-mostly transactional round — a full 256-page pinned
//!   sweep of a shared large object plus one single-page write to a
//!   private object, committed. The per-read figure therefore includes
//!   the amortised commit cost, which is where the baseline's
//!   two-fsyncs-per-commit shows up against group commit's shared,
//!   no-force flush;
//! * `zero_copy`: the phase counter identity
//!   `Δlogical_reads == Δpinned_reads` (every read on the hot path took
//!   the zero-copy guard, none fell back to a page copy);
//! * `commit_burst`: durable sync calls (WAL + data backend) for a
//!   burst of 16 concurrent single-page commit transactions.
//!
//! The two configurations are measured interleaved (every repetition
//! alternates between them), so ambient drift hits both equally.

use grt_bench::CostTrailer;
use grt_metrics::MetricsSnapshot;
use grt_sbspace::{IsolationLevel, LoId, LockMode, Sbspace, SbspaceOptions, PAGE_SIZE};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const READER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const PAGES: u32 = 256;
const BURST_TXNS: usize = 16;

struct Config {
    name: &'static str,
    shards: usize,
    group_commit: bool,
}

const CONFIGS: [Config; 2] = [
    Config {
        name: "baseline",
        shards: 1,
        group_commit: false,
    },
    Config {
        name: "sharded+group",
        shards: 16,
        group_commit: true,
    },
];

/// File-backed space: WAL syncs are real fsyncs, so the commit-burst
/// numbers reflect the latency group commit amortises.
fn space(cfg: &Config) -> (Sbspace, PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "grt-bench-bufferpool-{}-{}",
        std::process::id(),
        cfg.name.replace('+', "-")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let sb = Sbspace::file(
        &dir,
        SbspaceOptions {
            pool_pages: 1 << 12,
            pool_shards: cfg.shards,
            lock_timeout: Duration::from_secs(20),
            group_commit: cfg.group_commit,
            commit_batch_size: 32,
            ..Default::default()
        },
    )
    .unwrap();
    (sb, dir)
}

/// One shared read object of `PAGES` data pages, plus a private
/// single-page write object per worker thread.
fn preload(sb: &Sbspace) -> (LoId, Vec<LoId>) {
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    let lo = sb.create_lo(&txn).unwrap();
    let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
    let mut page = [0u8; PAGE_SIZE];
    for i in 0..PAGES {
        page[..4].copy_from_slice(&i.to_le_bytes());
        h.append_page(&page).unwrap();
    }
    h.close().unwrap();
    let max_threads = *READER_COUNTS.iter().max().unwrap();
    let write_los: Vec<LoId> = (0..max_threads)
        .map(|_| {
            let w = sb.create_lo(&txn).unwrap();
            let mut h = sb.open_lo(&txn, w, LockMode::Exclusive).unwrap();
            h.append_page(&[1u8; PAGE_SIZE]).unwrap();
            h.close().unwrap();
            w
        })
        .collect();
    txn.commit().unwrap();
    (lo, write_los)
}

/// `threads` workers, each running `rounds` read-mostly transactions:
/// a full pinned sweep of the shared LO plus one page written to the
/// worker's private LO, then commit. Returns (ns/read, reads) — the
/// commit cost is amortised into ns/read.
fn reader_phase(
    sb: &Sbspace,
    lo: LoId,
    write_los: &[LoId],
    threads: usize,
    rounds: usize,
) -> (f64, u64) {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let start = Instant::now();
    std::thread::scope(|s| {
        for &wlo in &write_los[..threads] {
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                barrier.wait();
                for round in 0..rounds {
                    let txn = sb.begin(IsolationLevel::ReadCommitted);
                    let h = sb.open_lo(&txn, lo, LockMode::Shared).unwrap();
                    let mut checksum = 0u64;
                    for p in 0..PAGES {
                        let guard = h.read_page_pinned(p).unwrap();
                        checksum += u64::from(guard[0]);
                    }
                    assert!(checksum > 0);
                    h.close().unwrap();
                    let mut w = sb.open_lo(&txn, wlo, LockMode::Exclusive).unwrap();
                    w.write_page(0, &[round as u8; PAGE_SIZE]).unwrap();
                    w.close().unwrap();
                    txn.commit().unwrap();
                }
            });
        }
        barrier.wait();
    });
    let elapsed = start.elapsed();
    let reads = (threads * rounds) as u64 * u64::from(PAGES);
    (elapsed.as_nanos() as f64 / reads as f64, reads)
}

/// A burst of `BURST_TXNS` concurrent transactions, each writing one
/// page of its own LO and committing. Returns durable sync calls plus
/// the phase's full counter deltas for the trailer.
fn commit_burst(sb: &Sbspace) -> (u64, MetricsSnapshot) {
    let setup = sb.begin(IsolationLevel::ReadCommitted);
    let los: Vec<LoId> = (0..BURST_TXNS)
        .map(|_| {
            let lo = sb.create_lo(&setup).unwrap();
            let mut h = sb.open_lo(&setup, lo, LockMode::Exclusive).unwrap();
            h.append_page(&[7u8; PAGE_SIZE]).unwrap();
            h.close().unwrap();
            lo
        })
        .collect();
    setup.commit().unwrap();

    let mut trailer = CostTrailer::new(sb.metrics());
    let barrier = Arc::new(Barrier::new(BURST_TXNS));
    std::thread::scope(|s| {
        for &lo in &los {
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let txn = sb.begin(IsolationLevel::ReadCommitted);
                let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
                h.write_page(0, &[9u8; PAGE_SIZE]).unwrap();
                h.close().unwrap();
                barrier.wait();
                txn.commit().unwrap();
            });
        }
    });
    let d = trailer.phase();
    let syncs = d.get("sbspace.wal_syncs") + d.get("sbspace.data_syncs");
    (syncs, d)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Quick mode keeps the shape of the measurement (same thread
    // counts, same interleaving) but shrinks the work to CI-smoke size.
    let (reps, rounds, out_file) = if quick {
        (2, 8, "BENCH_bufferpool_quick.json")
    } else {
        (5, 40, "BENCH_bufferpool.json")
    };
    // Both spaces live for the whole run and every repetition
    // alternates between them, so ambient drift (page-cache warming,
    // background load) hits both configurations equally instead of
    // whichever happened to be measured last.
    let spaces: Vec<(Sbspace, PathBuf, LoId, Vec<LoId>)> = CONFIGS
        .iter()
        .map(|cfg| {
            let (sb, dir) = space(cfg);
            let (lo, write_los) = preload(&sb);
            // Warm the pool so the measured phase is pure hit-path work.
            reader_phase(&sb, lo, &write_los, 1, rounds);
            (sb, dir, lo, write_los)
        })
        .collect();

    let mut best = [[f64::INFINITY; READER_COUNTS.len()]; CONFIGS.len()];
    let mut reads = [[0u64; READER_COUNTS.len()]; CONFIGS.len()];
    let mut phase_diffs: Vec<Vec<MetricsSnapshot>> =
        vec![vec![MetricsSnapshot::default(); READER_COUNTS.len()]; CONFIGS.len()];
    for (ti, &t) in READER_COUNTS.iter().enumerate() {
        for _ in 0..reps {
            for (ci, (sb, _, lo, write_los)) in spaces.iter().enumerate() {
                let mut trailer = CostTrailer::new(sb.metrics());
                let (ns, n) = reader_phase(sb, *lo, write_los, t, rounds);
                let d = trailer.phase();
                // Zero-copy identity: every logical read in the phase
                // went through the pinned (no page copy) path.
                assert_eq!(
                    d.get("sbspace.logical_reads"),
                    d.get("sbspace.pinned_reads"),
                    "copying reads leaked into the pinned phase: {d}"
                );
                if ns < best[ci][ti] {
                    best[ci][ti] = ns;
                    phase_diffs[ci][ti] = d;
                }
                reads[ci][ti] = n;
            }
        }
    }

    let mut json = String::from("{\n");
    let mut summary: Vec<String> = Vec::new();
    for (ci, cfg) in CONFIGS.iter().enumerate() {
        println!(
            "== {} (shards={}, group_commit={}) ==",
            cfg.name, cfg.shards, cfg.group_commit
        );
        let (sb, _, _, _) = &spaces[ci];
        let mut reader_json = Vec::new();
        for (ti, &t) in READER_COUNTS.iter().enumerate() {
            let (ns, n) = (best[ci][ti], reads[ci][ti]);
            println!("  {t} reader(s): {ns:10.1} ns/read  ({n} reads/run, zero_copy=true)");
            println!(
                "{}",
                CostTrailer::line(&format!("readers t={t}"), &phase_diffs[ci][ti])
            );
            reader_json.push(format!(
                "      {{\"threads\": {t}, \"ns_per_read\": {ns:.1}, \
                 \"reads\": {n}, \"zero_copy\": true}}"
            ));
        }

        let (syncs, burst_diff) = commit_burst(sb);
        println!("  commit burst: {BURST_TXNS} txns -> {syncs} durable syncs");
        println!("{}", CostTrailer::line("commit burst", &burst_diff));
        let four = READER_COUNTS.iter().position(|&t| t == 4).unwrap();
        summary.push(format!(
            "{}: 4-reader {:.1} ns/read, burst {} syncs",
            cfg.name, best[ci][four], syncs
        ));

        let _ = write!(
            json,
            "  \"{}\": {{\n    \"pool_shards\": {},\n    \"group_commit\": {},\n    \
             \"readers\": [\n{}\n    ],\n    \"commit_burst\": {{\"txns\": {}, \
             \"durable_syncs\": {}}}\n  }}{}\n",
            cfg.name,
            cfg.shards,
            cfg.group_commit,
            reader_json.join(",\n"),
            BURST_TXNS,
            syncs,
            if ci + 1 < CONFIGS.len() { "," } else { "" }
        );
    }
    for (sb, dir, _, _) in spaces {
        drop(sb);
        let _ = std::fs::remove_dir_all(dir);
    }
    json.push('}');
    json.push('\n');
    std::fs::write(out_file, &json).unwrap();
    println!("\nwrote {out_file}");
    for line in summary {
        println!("  {line}");
    }
}
