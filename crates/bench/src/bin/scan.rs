//! Parallel-scan and bulk-build benchmark.
//!
//! ```text
//! cargo run --release -p grt-bench --bin scan [-- --quick]
//! ```
//!
//! Emits `BENCH_scan.json` (with `--quick`: fewer repetitions and
//! worker counts over the same tree, written to `BENCH_scan_quick.json`
//! for CI's `bench_gate --scan-speedup`). Three sections:
//!
//! * `selective`: a narrow bitemporal window over a large GR-tree —
//!   the case the parallel executor exists for. Reports ns/row and
//!   speedup against the same scan at one worker.
//! * `full_range`: a query consistent with every page; parallelism
//!   must still help (more pages per worker), just less dramatically
//!   per row returned.
//! * `index_build`: the same 50k-entry history packed with the
//!   sort-tile-recursive bulk loader versus inserted one entry at a
//!   time — the two paths `CREATE INDEX` chooses between (`am_build`
//!   versus the per-row `am_insert` fallback).
//!
//! Scan speedups track the host's cores: a single-core container
//! reports ≈1.0x at every degree (the checked-in baseline was
//! generated on one), while an N-core machine approaches N on the
//! selective scan. The gate compares ratios directionally, so a
//! beefier runner can only ever look better than the baseline.

use grt_bench::fixtures::fresh_lo;
use grt_grtree::{bulk, parallel_scan, GrTree, GrTreeOptions, LeafEntry};
use grt_temporal::{Day, Predicate, TimeExtent, TtEnd, VtEnd};
use std::fmt::Write as _;
use std::time::Instant;

/// Fan-out kept moderate so the fixture spreads over thousands of
/// pages — the regime where fanning subtrees out to workers pays.
const MAX_ENTRIES: usize = 32;
const POOL_PAGES: usize = 1 << 15;
const SCAN_ENTRIES: usize = 150_000;
const BUILD_ENTRIES: usize = 50_000;
const CT: Day = Day(31_000);

fn extent(i: usize) -> TimeExtent {
    let base = ((i * 37) % 29_000) as i32;
    let (tt_end, vt_end) = match i % 4 {
        0 => (TtEnd::Uc, VtEnd::Now),
        1 => (TtEnd::Uc, VtEnd::Ground(Day(base + 40 + (i % 50) as i32))),
        2 => (
            TtEnd::Ground(Day(base + 20 + (i % 30) as i32)),
            VtEnd::Ground(Day(base + 35 + (i % 60) as i32)),
        ),
        _ => (TtEnd::Ground(Day(base + 25)), VtEnd::Now),
    };
    TimeExtent::from_parts(Day(base), tt_end, Day(base - (i % 7) as i32), vt_end).unwrap()
}

fn entries(n: usize) -> Vec<LeafEntry> {
    (0..n)
        .map(|i| LeafEntry {
            extent: extent(i),
            rowid: i as u64,
        })
        .collect()
}

fn ground(tt1: i32, tt2: i32, vt1: i32, vt2: i32) -> TimeExtent {
    TimeExtent::from_parts(
        Day(tt1),
        TtEnd::Ground(Day(tt2)),
        Day(vt1),
        VtEnd::Ground(Day(vt2)),
    )
    .unwrap()
}

struct ScanConfig {
    name: &'static str,
    query: TimeExtent,
}

fn build_fixture(n: usize) -> GrTree {
    let (sb, lo) = fresh_lo(POOL_PAGES);
    // The space must outlive the tree handle; benchmark fixtures leak
    // it for the process, like every other bin here.
    std::mem::forget(sb);
    bulk::bulk_load(
        lo,
        entries(n),
        CT,
        GrTreeOptions {
            max_entries: MAX_ENTRIES,
            ..Default::default()
        },
    )
    .unwrap()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Quick trims repetitions and worker counts but scans the same
    // tree, so its speedups stay comparable with the full baseline's.
    let (workers, reps, out_file): (&[usize], usize, &str) = if quick {
        (&[1, 2, 4], 2, "BENCH_scan_quick.json")
    } else {
        (&[1, 2, 4, 8], 3, "BENCH_scan.json")
    };

    let configs = [
        ScanConfig {
            name: "selective",
            query: ground(5_000, 6_000, 4_900, 6_200),
        },
        ScanConfig {
            name: "full_range",
            query: ground(0, 31_000, -10, 31_000),
        },
    ];

    let tree = build_fixture(SCAN_ENTRIES);
    let reader = tree.reader();
    println!(
        "GR-tree fixture: {SCAN_ENTRIES} entries, {} pages, height {}",
        reader.pages(),
        reader.height()
    );

    let mut json = String::from("{\n");
    for cfg in &configs {
        println!("== {} ==", cfg.name);
        let mut rows_out = Vec::new();
        let mut serial_ns: Option<f64> = None;
        for &w in workers {
            let mut best_ns = f64::INFINITY;
            let mut rows = 0usize;
            for _ in 0..reps {
                let start = Instant::now();
                let out = parallel_scan(&reader, Predicate::Overlaps, cfg.query, CT, w).unwrap();
                let ns = start.elapsed().as_nanos() as f64;
                rows = out.rows.len();
                if ns < best_ns {
                    best_ns = ns;
                }
            }
            assert!(rows > 0, "{}: the query matched nothing", cfg.name);
            if w == 1 {
                serial_ns = Some(best_ns);
            }
            let speedup = serial_ns.expect("workers list starts at 1") / best_ns;
            let ns_per_row = best_ns / rows as f64;
            println!(
                "  {w} worker(s): {ns_per_row:8.1} ns/row over {rows} rows  (speedup {speedup:.2}x)"
            );
            rows_out.push(format!(
                "      {{\"workers\": {w}, \"ns_per_row\": {ns_per_row:.1}, \
                 \"rows\": {rows}, \"speedup\": {speedup:.3}}}"
            ));
        }
        let _ = write!(
            json,
            "  \"{}\": {{\n    \"entries\": {SCAN_ENTRIES},\n    \"scans\": [\n{}\n    ]\n  }},\n",
            cfg.name,
            rows_out.join(",\n")
        );
    }

    // Bulk versus incremental build over one identical entry set.
    println!("== index_build ==");
    let build_set = entries(BUILD_ENTRIES);
    let mut bulk_ns = f64::INFINITY;
    let mut incr_ns = f64::INFINITY;
    for _ in 0..reps {
        let (sb, lo) = fresh_lo(POOL_PAGES);
        let start = Instant::now();
        let t = bulk::bulk_load(
            lo,
            build_set.clone(),
            CT,
            GrTreeOptions {
                max_entries: MAX_ENTRIES,
                ..Default::default()
            },
        )
        .unwrap();
        bulk_ns = bulk_ns.min(start.elapsed().as_nanos() as f64);
        assert_eq!(t.len(), BUILD_ENTRIES as u64);
        drop(t);
        std::mem::forget(sb);

        let (sb, lo) = fresh_lo(POOL_PAGES);
        let mut t = GrTree::create(
            lo,
            GrTreeOptions {
                max_entries: MAX_ENTRIES,
                ..Default::default()
            },
        )
        .unwrap();
        let start = Instant::now();
        for e in &build_set {
            t.insert(e.extent, e.rowid, CT).unwrap();
        }
        incr_ns = incr_ns.min(start.elapsed().as_nanos() as f64);
        drop(t);
        std::mem::forget(sb);
    }
    let advantage = incr_ns / bulk_ns;
    println!(
        "  bulk (STR):   {:8.1} ns/row  ({:.1} ms total)",
        bulk_ns / BUILD_ENTRIES as f64,
        bulk_ns / 1e6
    );
    println!(
        "  incremental:  {:8.1} ns/row  ({:.1} ms total)  — bulk is {advantage:.2}x faster",
        incr_ns / BUILD_ENTRIES as f64,
        incr_ns / 1e6
    );
    let _ = write!(
        json,
        "  \"index_build\": {{\n    \"entries\": {BUILD_ENTRIES},\n    \"builds\": [\n      \
         {{\"method\": \"bulk\", \"ns_per_row\": {:.1}, \"advantage\": {advantage:.3}}},\n      \
         {{\"method\": \"incremental\", \"ns_per_row\": {:.1}, \"advantage\": 1.0}}\n    ]\n  }}\n",
        bulk_ns / BUILD_ENTRIES as f64,
        incr_ns / BUILD_ENTRIES as f64
    );
    json.push('}');
    json.push('\n');
    std::fs::write(out_file, &json).unwrap();
    println!("\nwrote {out_file}");
}
