//! WAL-boundedness soak: a churn workload over a dataset much larger
//! than the buffer pool, with the background fuzzy checkpointer
//! recycling segments underneath it.
//!
//! ```text
//! cargo run --release -p grt-bench --bin soak [-- --quick]
//! cargo run --release -p grt-bench --bin soak -- --churn-dir DIR
//! cargo run --release -p grt-bench --bin soak -- --recover-dir DIR
//! ```
//!
//! The default (in-memory) mode emits `BENCH_soak.json` (with
//! `--quick`: `BENCH_soak_quick.json`, fewer rounds) whose single
//! `soak` section carries both the figures and the limits the run was
//! sized for, so `bench_gate --wal-bound` can gate absolutely:
//!
//! * `wal_live_bytes_max` / `wal_live_bytes_limit`: the live log,
//!   sampled after every churn round, must stay bounded by a constant
//!   number of segments no matter how many rounds ran;
//! * `recovery_ms` / `recovery_ms_limit`: time to reopen the space
//!   over the surviving log — only the segments above the last
//!   checkpoint's low-water mark replay;
//! * `throughput_ratio`: churn ops/s with checkpointing on (the
//!   background thread plus a deterministic checkpoint every
//!   `CKPT_ROUNDS` rounds, paid inside the timed loop) versus the same
//!   workload with checkpointing off. Fuzzy checkpoints flush shard by
//!   shard without stalling writers, so the ratio must stay near 1;
//! * `checkpoints` / `segments_recycled`: the machinery must actually
//!   have run — a bounded log with zero recycles would mean the
//!   workload was too small to prove anything.
//!
//! `--churn-dir` runs the same churn against a file-backed space in
//! `DIR` until killed — CI's `soak-smoke` job SIGKILLs it mid-churn —
//! and `--recover-dir` then reopens `DIR`, timing recovery and
//! verifying every seeded object is readable. Repeated kill/recover
//! cycles must keep succeeding: replay is idempotent.

use grt_sbspace::wal::MemWal;
use grt_sbspace::{IsolationLevel, LoId, LockMode, MemBackend, Sbspace, SbspaceOptions, PAGE_SIZE};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Objects in the working set. A [`LoId`] is the physical page number
/// of the object's inode, so ids depend on allocation order — the seed
/// phase records them (in a `los.txt` manifest for the file-backed
/// modes) rather than assuming a numbering.
const LOS: u32 = 8;
/// Pages per object — 8 × 96 = 768 data pages against a 128-page pool,
/// so the working set never fits and eviction churns continuously.
const PAGES_PER_LO: u32 = 96;
const POOL_PAGES: usize = 128;
const SEG_BYTES: usize = 64 * 1024;
/// Rounds between the deterministic checkpoints of the active pass.
/// The background checkpointer also runs on its timer, but churn is so
/// much faster than wall-clock intervals that the boundedness claim
/// must not depend on machine speed: a checkpoint every CKPT_ROUNDS
/// rounds caps the log at CKPT_ROUNDS rounds' worth of images no
/// matter how fast the loop spins.
const CKPT_ROUNDS: u64 = 8;
/// The gate bound: the live log may never exceed this many segments.
/// A churn round logs roughly 70 KiB (four copy-on-write page images
/// plus their allocation and inode metadata; truncate rounds more), so
/// CKPT_ROUNDS rounds come to ~0.6 MiB; 16 segments of 64 KiB give
/// headroom for a checkpoint landing mid-burst and for the segment
/// holding the anchor transaction.
const SEG_BOUND: usize = 16;

/// Deterministic xorshift64* — identical churn on every run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn opts(checkpoint: bool) -> SbspaceOptions {
    SbspaceOptions {
        pool_pages: POOL_PAGES,
        lock_timeout: Duration::from_secs(10),
        group_commit: true,
        wal_segment_bytes: SEG_BYTES,
        checkpoint_interval: checkpoint.then(|| Duration::from_millis(20)),
        ..Default::default()
    }
}

/// Seeds the working set: LOS objects of PAGES_PER_LO pages each.
fn seed(sb: &Sbspace) -> Vec<LoId> {
    let mut los = Vec::new();
    for _ in 0..LOS {
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        for p in 0..PAGES_PER_LO {
            h.append_page(&[(p % 251) as u8; PAGE_SIZE]).unwrap();
        }
        h.close().unwrap();
        txn.commit().unwrap();
        los.push(lo);
    }
    los
}

/// One churn transaction: rewrite a few pages of one object (UPDATE),
/// and every eighth round shrink-and-regrow it (DELETE + INSERT), the
/// truncation retiring its tail pages through the epoch queue.
fn churn_round(sb: &Sbspace, los: &[LoId], rng: &mut Rng, round: u64) {
    let lo = los[rng.below(los.len() as u64) as usize];
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    let mut h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
    if round % 8 == 7 {
        let keep = PAGES_PER_LO - 8;
        h.truncate_pages(keep).unwrap();
        for p in keep..PAGES_PER_LO {
            h.append_page(&[(p ^ round as u32) as u8; PAGE_SIZE])
                .unwrap();
        }
    } else {
        for _ in 0..4 {
            let p = rng.below(PAGES_PER_LO as u64) as u32;
            h.write_page(p, &[(round % 251) as u8; PAGE_SIZE]).unwrap();
        }
    }
    h.close().unwrap();
    txn.commit().unwrap();
}

struct SoakRun {
    ops_per_sec: f64,
    wal_live_bytes_max: u64,
    segments_max: usize,
}

/// Runs `rounds` of churn over a fresh in-memory space, sampling the
/// live-log size after every round. Returns the run plus the pieces a
/// recovery measurement needs (backend, wal).
fn run_churn(
    rounds: u64,
    checkpoint: bool,
) -> (SoakRun, Arc<MemBackend>, Arc<MemWal>, Sbspace, Vec<LoId>) {
    let backend = Arc::new(MemBackend::new());
    let wal = Arc::new(MemWal::with_segment_bytes(SEG_BYTES));
    let sb = Sbspace::open_with(Arc::clone(&backend), Arc::clone(&wal), opts(checkpoint)).unwrap();
    let los = seed(&sb);
    if checkpoint {
        // Clear the seed backlog so the sampled steady state starts
        // bounded; from here every sample sits at most CKPT_ROUNDS
        // rounds past a checkpoint.
        sb.checkpoint().unwrap();
    }
    let mut rng = Rng(0xdead_beef);
    let mut live_max = 0u64;
    let mut segs_max = 0usize;
    let start = Instant::now();
    for round in 0..rounds {
        churn_round(&sb, &los, &mut rng, round);
        if checkpoint {
            if round % CKPT_ROUNDS == CKPT_ROUNDS - 1 {
                sb.checkpoint().unwrap();
            }
            live_max = live_max.max(sb.wal_live_bytes().unwrap());
            segs_max = segs_max.max(sb.wal_segment_count().unwrap());
        }
    }
    let ops_per_sec = rounds as f64 / start.elapsed().as_secs_f64();
    (
        SoakRun {
            ops_per_sec,
            wal_live_bytes_max: live_max,
            segments_max: segs_max,
        },
        backend,
        wal,
        sb,
        los,
    )
}

fn in_memory_soak(quick: bool) {
    let rounds: u64 = if quick { 400 } else { 2_000 };

    // Idle baseline: same churn, checkpointing off. Its WAL grows
    // without bound — which is the point of the comparison.
    let (idle, _, _, _, _) = run_churn(rounds, false);

    // Checkpointing on — the background thread on its timer plus a
    // deterministic checkpoint every CKPT_ROUNDS rounds *inside* the
    // timed loop. The log must stay bounded while throughput holds
    // near the idle rate even though the active pass is also paying
    // for its checkpoints.
    let (active, backend, wal, sb, los) = run_churn(rounds, true);
    let snap = sb.metrics().snapshot();
    let checkpoints = snap.get("sbspace.checkpoints");
    let recycled = snap.get("wal.segments_recycled");

    // Crash and reopen over the surviving log: recovery replays only
    // the segments above the last checkpoint's low-water mark.
    drop(sb);
    let t0 = Instant::now();
    let sb2 = Sbspace::open_with(Arc::clone(&backend), Arc::clone(&wal), opts(false)).unwrap();
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    // Spot-check the recovered state: every object fully readable.
    let txn = sb2.begin(IsolationLevel::ReadCommitted);
    for &id in &los {
        let h = sb2.open_lo(&txn, id, LockMode::Shared).unwrap();
        assert!(h.page_count() >= PAGES_PER_LO - 8, "{id} lost pages");
        h.read_page(0).unwrap();
    }
    drop(txn);

    let ratio = active.ops_per_sec / idle.ops_per_sec;
    let recovery_ms_limit = 2_000.0;
    let mut out = String::new();
    writeln!(out, "{{").unwrap();
    writeln!(out, "  \"soak\": {{").unwrap();
    writeln!(out, "    \"rounds\": {rounds},").unwrap();
    writeln!(
        out,
        "    \"wal_live_bytes_max\": {},",
        active.wal_live_bytes_max
    )
    .unwrap();
    writeln!(
        out,
        "    \"wal_live_bytes_limit\": {},",
        (SEG_BOUND * SEG_BYTES) as u64
    )
    .unwrap();
    writeln!(out, "    \"segments_max\": {},", active.segments_max).unwrap();
    writeln!(out, "    \"segment_bound\": {SEG_BOUND},").unwrap();
    writeln!(out, "    \"recovery_ms\": {recovery_ms:.2},").unwrap();
    writeln!(out, "    \"recovery_ms_limit\": {recovery_ms_limit:.1},").unwrap();
    writeln!(out, "    \"checkpoints\": {checkpoints},").unwrap();
    writeln!(out, "    \"segments_recycled\": {recycled},").unwrap();
    writeln!(out, "    \"idle_ops_per_sec\": {:.1},", idle.ops_per_sec).unwrap();
    writeln!(
        out,
        "    \"active_ops_per_sec\": {:.1},",
        active.ops_per_sec
    )
    .unwrap();
    writeln!(out, "    \"throughput_ratio\": {ratio:.3}").unwrap();
    writeln!(out, "  }}").unwrap();
    writeln!(out, "}}").unwrap();
    print!("{out}");
    let path = if quick {
        "BENCH_soak_quick.json"
    } else {
        "BENCH_soak.json"
    };
    std::fs::write(path, out).unwrap();
    println!("soak: wrote {path}");
}

/// A [`LoId`] is a physical page number, so the ids the seed phase got
/// must survive the process: they live in a `los.txt` manifest next to
/// the space, one id per line, written after the seed commits.
fn read_manifest(path: &std::path::Path) -> Vec<LoId> {
    std::fs::read_to_string(path.join("los.txt"))
        .expect("missing los.txt manifest — was this directory seeded by soak --churn-dir?")
        .lines()
        .map(|l| LoId(l.trim().parse().expect("bad id in los.txt")))
        .collect()
}

/// File-backed churn until killed (CI sends SIGKILL mid-flight). The
/// seed phase is skipped when the directory already holds a space, so
/// repeated kill/recover/churn cycles keep growing the same dataset.
fn churn_dir(dir: &str) {
    let path = std::path::Path::new(dir);
    let fresh = !path.join("pages.db").exists();
    let sb = Sbspace::file(path, opts(true)).unwrap();
    let los: Vec<LoId> = if fresh {
        let los = seed(&sb);
        let manifest: String = los.iter().map(|lo| format!("{}\n", lo.0)).collect();
        std::fs::write(path.join("los.txt"), manifest).unwrap();
        los
    } else {
        read_manifest(path)
    };
    println!("soak: churning in {dir} (fresh={fresh}); kill -9 at will");
    let mut rng = Rng(0xfeed_face);
    for round in 0..u64::MAX {
        churn_round(&sb, &los, &mut rng, round);
        if round % 50 == 49 {
            println!(
                "soak: round {} live_bytes {} segments {}",
                round + 1,
                sb.wal_live_bytes().unwrap(),
                sb.wal_segment_count().unwrap()
            );
        }
    }
}

/// Reopens a killed churn directory: times recovery, verifies every
/// seeded object, and bounds the surviving log.
fn recover_dir(dir: &str) {
    let path = std::path::Path::new(dir);
    let los = read_manifest(path);
    let t0 = Instant::now();
    let sb = Sbspace::file(path, opts(false)).unwrap();
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    for &id in &los {
        let h = sb.open_lo(&txn, id, LockMode::Shared).unwrap();
        assert!(
            h.page_count() >= PAGES_PER_LO - 8,
            "{id} lost pages in recovery"
        );
        for p in 0..h.page_count().min(4) {
            h.read_page(p).unwrap();
        }
    }
    drop(txn);
    sb.space_info().unwrap(); // free-list walk: structural integrity
    let live = sb.wal_live_bytes().unwrap();
    println!(
        "{{\"recover\": {{\"recovery_ms\": {recovery_ms:.2}, \"wal_live_bytes\": {live}, \
         \"verified_los\": {LOS}}}}}"
    );
    assert!(
        recovery_ms < 30_000.0,
        "recovery took {recovery_ms:.0} ms — replaying far too much log"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--churn-dir" => {
                let dir = it.next().expect("--churn-dir needs a directory");
                churn_dir(dir);
                return;
            }
            "--recover-dir" => {
                let dir = it.next().expect("--recover-dir needs a directory");
                recover_dir(dir);
                return;
            }
            other => {
                eprintln!("soak: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    in_memory_soak(quick);
}
