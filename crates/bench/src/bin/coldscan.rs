//! Cold-scan and batched-flush I/O benchmark.
//!
//! ```text
//! cargo run --release -p grt-bench --bin coldscan [-- --quick]
//! ```
//!
//! Emits `BENCH_io.json` (with `--quick`: a smaller tree, written to
//! `BENCH_io_quick.json` for CI's `bench_gate --cold-scan`). Two
//! sections:
//!
//! * `coldscan`: a full-range scan over a file-backed GR-tree ~8-18x
//!   the buffer pool, with the pool's page cache dropped before every
//!   repetition so each scan faults its pages from the backend. The
//!   same scan runs against the same directory twice — once with scan
//!   prefetch off, once with two prefetch workers — and reports the
//!   best-of-reps latency of each plus the prefetch and
//!   read-coalescing counters of the prefetched pass. A cold scan plus
//!   an immediately repeated (warm) scan bound the cache-efficiency
//!   claim: over that window physical reads must run strictly below
//!   logical reads, with real prefetch hits.
//! * `checkpoint`: ~2000 copy-on-write dirty pages flushed by one
//!   checkpoint through the batched `write_pages` path. Reports MB/s
//!   and the write-run shape — sorted-by-PageId batching must coalesce
//!   the mostly-sequential COW allocations into multi-page runs.
//!
//! On a 1-CPU runner the OS page cache makes a "physical" read cheap,
//! so the off/on latency gap is modest there — the gate's quick mode
//! treats the speedup directionally (>= 0.8x, i.e. prefetch must not
//! *hurt*) and leans on the counter checks (hits > 0, pages/run > 1)
//! for the real evidence that the machinery engaged.

use grt_bench::trailer::CostTrailer;
use grt_grtree::{bulk, parallel_scan, GrTree, GrTreeOptions, LeafEntry};
use grt_sbspace::{IsolationLevel, LoId, LockMode, Sbspace, SbspaceOptions, PAGE_SIZE};
use grt_temporal::{Day, Predicate, TimeExtent, TtEnd, VtEnd};
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

const MAX_ENTRIES: usize = 32;
/// The scan-phase pool: small enough that the tree is 8-18x larger.
const SCAN_POOL_PAGES: usize = 256;
/// The build/flush-phase pool: large enough to hold every dirty page
/// of its no-steal transaction.
const BIG_POOL_PAGES: usize = 1 << 15;
/// Dirty pages the checkpoint-flush phase pushes through one batch.
const FLUSH_PAGES: u32 = 2_000;
const CT: Day = Day(31_000);

fn extent(i: usize) -> TimeExtent {
    let base = ((i * 37) % 29_000) as i32;
    let (tt_end, vt_end) = match i % 4 {
        0 => (TtEnd::Uc, VtEnd::Now),
        1 => (TtEnd::Uc, VtEnd::Ground(Day(base + 40 + (i % 50) as i32))),
        2 => (
            TtEnd::Ground(Day(base + 20 + (i % 30) as i32)),
            VtEnd::Ground(Day(base + 35 + (i % 60) as i32)),
        ),
        _ => (TtEnd::Ground(Day(base + 25)), VtEnd::Now),
    };
    TimeExtent::from_parts(Day(base), tt_end, Day(base - (i % 7) as i32), vt_end).unwrap()
}

fn entries(n: usize) -> Vec<LeafEntry> {
    (0..n)
        .map(|i| LeafEntry {
            extent: extent(i),
            rowid: i as u64,
        })
        .collect()
}

/// A query consistent with every page: the cold scan must touch the
/// whole tree, so the comparison is pure I/O shape.
fn full_range() -> TimeExtent {
    TimeExtent::from_parts(
        Day(0),
        TtEnd::Ground(Day(31_000)),
        Day(-10),
        VtEnd::Ground(Day(31_000)),
    )
    .unwrap()
}

/// A narrow transaction-time window whose qualifying subtree fits the
/// scan pool in both modes — the "revisit" workload of the
/// cache-efficiency window. Early in transaction time so few
/// still-open (`UC`) extents reach back across it: at 150k entries it
/// touches well under 256 pages, so repeated revisits must come out
/// of cache.
fn selective() -> TimeExtent {
    TimeExtent::from_parts(
        Day(500),
        TtEnd::Ground(Day(560)),
        Day(-10),
        VtEnd::Ground(Day(31_000)),
    )
    .unwrap()
}

fn opts(pool_pages: usize, prefetch_workers: usize, group_commit: bool) -> SbspaceOptions {
    SbspaceOptions {
        pool_pages,
        lock_timeout: Duration::from_secs(10),
        group_commit,
        prefetch_workers,
        ..Default::default()
    }
}

/// Builds the on-disk fixture once: a bulk-loaded GR-tree in `dir`,
/// checkpointed so the pages live in `pages.db` and reopens replay
/// almost no log. Returns the LoId the scan phases reopen.
fn build_fixture(dir: &Path, n: usize) -> LoId {
    let sb = Sbspace::file(dir, opts(BIG_POOL_PAGES, 0, false)).unwrap();
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    let lo_id = sb.create_lo(&txn).unwrap();
    let handle = sb.open_lo(&txn, lo_id, LockMode::Exclusive).unwrap();
    let tree = bulk::bulk_load(
        handle,
        entries(n),
        CT,
        GrTreeOptions {
            max_entries: MAX_ENTRIES,
            ..Default::default()
        },
    )
    .unwrap();
    tree.into_lo().unwrap().close().unwrap();
    txn.commit().unwrap();
    sb.checkpoint().unwrap();
    lo_id
}

/// One cold-scan pass over the fixture at the given prefetch setting:
/// best-of-`reps` cold latency, then an instrumented cold + warm scan
/// pair whose counter deltas make the report's evidence.
struct ColdPass {
    best_ns: f64,
    rows: usize,
    tree_pages: u32,
    /// Deltas over the instrumented cold scan only.
    cold: grt_sbspace::IoSnapshot,
    /// Deltas over the repeated selective revisits that follow it.
    revisit: grt_sbspace::IoSnapshot,
}

fn cold_pass(dir: &Path, lo_id: LoId, prefetch_workers: usize, reps: usize) -> ColdPass {
    let sb = Sbspace::file(dir, opts(SCAN_POOL_PAGES, prefetch_workers, false)).unwrap();
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    let handle = sb.open_lo(&txn, lo_id, LockMode::Shared).unwrap();
    let tree = GrTree::open(handle).unwrap();
    let reader = tree.reader();
    let query = full_range();
    let mut trailer = CostTrailer::new(sb.metrics());

    let mut best_ns = f64::INFINITY;
    let mut rows = 0usize;
    for _ in 0..reps {
        sb.drop_page_cache();
        let start = Instant::now();
        let out = parallel_scan(&reader, Predicate::Overlaps, query, CT, 2).unwrap();
        let ns = start.elapsed().as_nanos() as f64;
        rows = out.rows.len();
        best_ns = best_ns.min(ns);
    }
    assert!(rows > 0, "the full-range query matched nothing");

    // Instrumented pass: one cold full scan, then a selective window
    // revisited three times. The tree is ~8-18x the pool, so a warm
    // *full* revisit would re-fault everything; the revisit instead
    // probes a subtree the pool can hold, from a freshly dropped cache
    // — its first repetition faults (prefetch announcing the subtree
    // ahead of the cursor) into an empty pool, so the later ones must
    // come entirely out of cache and physical reads over the revisit
    // window run strictly below logical ones. (Without the drop, the
    // full scan's leftovers sit in the clock with their reference bits
    // set and keep squeezing the revisit set out.) The prefetcher is
    // quiesced before each sample so late installs land inside the
    // window they belong to.
    sb.drop_page_cache();
    let before = sb.stats().snapshot();
    parallel_scan(&reader, Predicate::Overlaps, query, CT, 2).unwrap();
    sb.prefetch_quiesce();
    let cold = sb.stats().snapshot().since(&before);
    sb.drop_page_cache();
    let mid = sb.stats().snapshot();
    for _ in 0..3 {
        let narrow = parallel_scan(&reader, Predicate::Overlaps, selective(), CT, 2).unwrap();
        assert!(
            !narrow.rows.is_empty(),
            "the selective query matched nothing"
        );
    }
    sb.prefetch_quiesce();
    let revisit = sb.stats().snapshot().since(&mid);
    let label = if prefetch_workers > 0 {
        format!("cold+warm prefetch={prefetch_workers}")
    } else {
        "cold+warm prefetch=off".to_string()
    };
    println!("{}", CostTrailer::line(&label, &trailer.phase()));

    let tree_pages = reader.pages();
    drop(reader);
    drop(tree);
    drop(txn);
    ColdPass {
        best_ns,
        rows,
        tree_pages,
        cold,
        revisit,
    }
}

/// Dirties `FLUSH_PAGES` pages of the fixture under group commit and
/// times the checkpoint that flushes them through `write_pages`.
/// Copy-on-write allocation makes the dirty set mostly sequential, so
/// the sorted batch must coalesce into multi-page runs.
struct FlushFigures {
    pages: u64,
    ms: f64,
    mb_per_sec: f64,
    write_runs: u64,
    coalesced_writes: u64,
}

fn flush_pass(dir: &Path, lo_id: LoId) -> FlushFigures {
    let sb = Sbspace::file(dir, opts(BIG_POOL_PAGES, 0, true)).unwrap();
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    let mut handle = sb.open_lo(&txn, lo_id, LockMode::Exclusive).unwrap();
    let dirty = FLUSH_PAGES.min(handle.page_count());
    for p in 0..dirty {
        handle.write_page(p, &[(p % 251) as u8; PAGE_SIZE]).unwrap();
    }
    handle.close().unwrap();
    txn.commit().unwrap();

    let before = sb.stats().snapshot();
    let start = Instant::now();
    sb.checkpoint().unwrap();
    let elapsed = start.elapsed();
    let d = sb.stats().snapshot().since(&before);
    let ms = elapsed.as_secs_f64() * 1e3;
    FlushFigures {
        pages: d.physical_writes,
        ms,
        mb_per_sec: (d.physical_writes * PAGE_SIZE as u64) as f64 / 1e6 / elapsed.as_secs_f64(),
        write_runs: d.write_runs,
        coalesced_writes: d.coalesced_writes,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Quick shrinks the tree but keeps best-of-3 cold repetitions: the
    // off/on latency ratio is the gated figure, and on a 1-CPU runner
    // a single cold pass is too jittery to compare.
    let (n, reps, out_file) = if quick {
        (60_000usize, 3usize, "BENCH_io_quick.json")
    } else {
        (150_000usize, 3usize, "BENCH_io.json")
    };

    let dir = std::env::temp_dir().join(format!("grt-coldscan-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let lo_id = build_fixture(&dir, n);
    println!("coldscan fixture: {n} entries in {}", dir.display());

    let off = cold_pass(&dir, lo_id, 0, reps);
    let on = cold_pass(&dir, lo_id, 2, reps);
    assert_eq!(off.rows, on.rows, "prefetch changed the result set");
    let speedup = off.best_ns / on.best_ns;
    println!(
        "cold scan: {} pages over a {SCAN_POOL_PAGES}-page pool ({} rows)",
        on.tree_pages, on.rows
    );
    println!(
        "  prefetch off: {:7.1} ms   ({} physical reads)",
        off.best_ns / 1e6,
        off.cold.physical_reads
    );
    println!(
        "  prefetch on:  {:7.1} ms   ({} physical reads in {} runs, {} hits, {} wasted)  {speedup:.2}x",
        on.best_ns / 1e6,
        on.cold.physical_reads,
        on.cold.read_runs,
        on.cold.prefetch_hits,
        on.cold.prefetch_wasted
    );
    // The cache-efficiency claim: across the revisit window the pool
    // (and the prefetcher feeding it) must absorb the repetitions —
    // strictly fewer physical than logical reads — and prefetched
    // pages must actually have been hit somewhere in the pass.
    assert!(
        on.revisit.physical_reads < on.revisit.logical_reads,
        "physical reads ({}) did not run below logical reads ({})",
        on.revisit.physical_reads,
        on.revisit.logical_reads
    );
    let pass_hits = on.cold.prefetch_hits + on.revisit.prefetch_hits;
    assert!(pass_hits > 0, "no prefetch hit landed");

    let pages_per_run_on = on.cold.physical_reads as f64 / on.cold.read_runs.max(1) as f64;
    let flush = flush_pass(&dir, lo_id);
    let pages_per_write_run = flush.pages as f64 / flush.write_runs.max(1) as f64;
    println!(
        "checkpoint flush: {} pages in {:.1} ms ({:.1} MB/s), {} runs ({:.1} pages/run, {} coalesced)",
        flush.pages, flush.ms, flush.mb_per_sec, flush.write_runs, pages_per_write_run,
        flush.coalesced_writes
    );

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"coldscan\": {{\n    \
           \"entries\": {n},\n    \
           \"tree_pages\": {},\n    \
           \"pool_pages\": {SCAN_POOL_PAGES},\n    \
           \"rows\": {},\n    \
           \"cold_ns_off\": {:.0},\n    \
           \"cold_ns_on\": {:.0},\n    \
           \"cold_speedup\": {speedup:.3},\n    \
           \"physical_reads_off\": {},\n    \
           \"physical_reads_on\": {},\n    \
           \"read_runs_on\": {},\n    \
           \"pages_per_run_on\": {pages_per_run_on:.2},\n    \
           \"prefetch_issued\": {},\n    \
           \"prefetch_hits\": {},\n    \
           \"prefetch_wasted\": {},\n    \
           \"delta_logical_reads\": {},\n    \
           \"delta_physical_reads\": {}\n  }},\n",
        on.tree_pages,
        on.rows,
        off.best_ns,
        on.best_ns,
        off.cold.physical_reads,
        on.cold.physical_reads,
        on.cold.read_runs,
        on.cold.prefetch_issued + on.revisit.prefetch_issued,
        pass_hits,
        on.cold.prefetch_wasted + on.revisit.prefetch_wasted,
        on.revisit.logical_reads,
        on.revisit.physical_reads,
    );
    let _ = write!(
        json,
        "  \"checkpoint\": {{\n    \
           \"dirty_pages\": {},\n    \
           \"flush_ms\": {:.2},\n    \
           \"mb_per_sec\": {:.1},\n    \
           \"write_runs\": {},\n    \
           \"pages_per_write_run\": {pages_per_write_run:.2},\n    \
           \"coalesced_writes\": {}\n  }}\n",
        flush.pages, flush.ms, flush.mb_per_sec, flush.write_runs, flush.coalesced_writes,
    );
    json.push('}');
    json.push('\n');
    std::fs::write(out_file, &json).unwrap();
    println!("wrote {out_file}");
    let _ = std::fs::remove_dir_all(&dir);
}
