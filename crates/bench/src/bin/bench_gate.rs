//! CI perf-regression gate:
//!
//! ```text
//! bench_gate <baseline.json> <candidate.json> [--tolerance 0.25]
//! ```
//!
//! Compares `ns_per_read` for every `(config, threads)` pair present in
//! both reports and exits non-zero when the candidate is more than
//! `tolerance` slower on any of them.

use grt_bench::gate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut tolerance = 0.25f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            tolerance = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage("--tolerance needs a number"));
        } else {
            files.push(a.clone());
        }
    }
    let [baseline_path, candidate_path] = files.as_slice() else {
        usage("expected two report files")
    };

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = gate::parse_read_rates(&read(baseline_path));
    let candidate = gate::parse_read_rates(&read(candidate_path));
    let comparisons = gate::compare(&baseline, &candidate);
    if comparisons.is_empty() {
        eprintln!("bench_gate: no shared (config, threads) pairs between the reports");
        std::process::exit(2);
    }

    let mut failed = false;
    for c in &comparisons {
        let verdict = if c.regressed(tolerance) {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{:<16} {} reader(s): baseline {:8.1} ns/read, candidate {:8.1} ns/read ({:+.1}%)  {verdict}",
            c.config,
            c.threads,
            c.baseline_ns,
            c.candidate_ns,
            (c.ratio - 1.0) * 100.0,
        );
    }
    if failed {
        eprintln!(
            "bench_gate: read latency regressed more than {:.0}% — see lines above",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!("bench_gate: all pairs within {:.0}%", tolerance * 100.0);
}

fn usage(err: &str) -> ! {
    eprintln!("bench_gate: {err}");
    eprintln!("usage: bench_gate <baseline.json> <candidate.json> [--tolerance 0.25]");
    std::process::exit(2);
}
