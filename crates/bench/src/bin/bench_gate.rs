//! CI perf-regression gate:
//!
//! ```text
//! bench_gate <baseline.json> <candidate.json> [--tolerance 0.25] [--quick]
//!            [--throughput | --scan-speedup]
//! bench_gate <candidate.json> --prepared-speedup [--threshold 1.3]
//! bench_gate <candidate.json> --wire-overhead [--threshold 10.0]
//! bench_gate <candidate.json> --read-scaling [--threshold 1.0]
//! bench_gate <candidate.json> --wal-bound [--threshold 0.75]
//! bench_gate <candidate.json> --cold-scan [--threshold 1.0]
//! ```
//!
//! Default mode compares `ns_per_read` for every `(config, threads)`
//! pair present in both reports (lower is better) and exits non-zero
//! when the candidate is more than `tolerance` slower on any of them.
//! With `--throughput` it compares `stmt_per_sec` for every
//! `(config, sessions)` pair instead (higher is better) and fails when
//! the candidate falls more than `tolerance` below the baseline. With
//! `--scan-speedup` it compares parallel-scan `speedup` ratios for
//! every `(config, workers)` pair (higher is better) — a candidate
//! whose scan no longer scales with workers fails the gate even when
//! its absolute latency happens to be fine.
//!
//! `--prepared-speedup` is an absolute gate over a single concurrency
//! report, not a baseline comparison: every session count's prepared
//! speedup must beat compile-every-time (> 1.0x) and the 1-session
//! figure must reach `--threshold` (default 1.3x). A ratio against a
//! disabled plan cache has a meaningful fixed point, so checking it
//! absolutely avoids ratcheting a baseline downward run over run.
//!
//! `--wire-overhead` is likewise absolute, over a `BENCH_wire.json`
//! report: the connect path must work and no session count may pay
//! more than `--threshold` (default 10x) the embedded statement rate
//! for going over loopback TCP — a ceiling generous enough for a
//! 1-CPU CI runner, tight enough to catch a per-statement wire
//! pathology (e.g. an accidental handshake or flush storm).
//!
//! `--read-scaling` is absolute over one concurrency report: the
//! `read_mostly` config's 8-session throughput must reach
//! `--threshold` (default 1.0x) times its 1-session throughput.
//! Snapshot reads keep the scan-dominated workload flat-to-rising in
//! the session count; a collapse means readers queue on writer locks.
//!
//! `--cold-scan` is absolute over a `BENCH_io.json` report: the
//! prefetched cold scan must run at least as fast as the prefetch-off
//! pass (`--threshold`, default 1.0x — prefetch may never hurt),
//! prefetch hits must have landed, vectored reads and the batched
//! checkpoint flush must both have coalesced into multi-page runs, and
//! the cold+warm window must show physical reads strictly below
//! logical ones.
//!
//! `--wal-bound` is absolute over a `BENCH_soak.json` report: the
//! soak's peak live WAL must stay under the limit the run was sized
//! for, recovery must finish under its limit, the checkpointer must
//! actually have recycled segments, and checkpoint-active churn must
//! reach `--threshold` (default 0.75x) the checkpoint-off rate — the
//! fuzzy walk may not stall writers into a throughput cliff.
//!
//! `--quick` marks the candidate as a quick-mode run (fewer ops, fewer
//! repetitions): it doubles the effective tolerance for the comparison
//! modes, relaxes the `--read-scaling` floor by 0.8x (quick runs are
//! too short to resolve a few percent, but a lock-queueing collapse
//! still lands far below the relaxed floor), and labels the output —
//! so CI invocations say what they mean instead of hand-tuning a
//! looser `--tolerance` per job step.

use grt_bench::gate;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    ReadLatency,
    Throughput,
    ScanSpeedup,
    PreparedSpeedup,
    WireOverhead,
    ReadScaling,
    WalBound,
    ColdScan,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut tolerance = 0.25f64;
    let mut threshold = 1.3f64;
    let mut mode = Mode::ReadLatency;
    let mut quick = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            tolerance = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage("--tolerance needs a number"));
        } else if a == "--threshold" {
            threshold = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage("--threshold needs a number"));
        } else if a == "--throughput" {
            mode = Mode::Throughput;
        } else if a == "--scan-speedup" {
            mode = Mode::ScanSpeedup;
        } else if a == "--prepared-speedup" {
            mode = Mode::PreparedSpeedup;
        } else if a == "--wire-overhead" {
            mode = Mode::WireOverhead;
            threshold = 10.0;
        } else if a == "--read-scaling" {
            mode = Mode::ReadScaling;
            threshold = 1.0;
        } else if a == "--wal-bound" {
            mode = Mode::WalBound;
            threshold = 0.75;
        } else if a == "--cold-scan" {
            mode = Mode::ColdScan;
            threshold = 1.0;
        } else if a == "--quick" {
            quick = true;
        } else {
            files.push(a.clone());
        }
    }
    if quick {
        tolerance *= 2.0;
        if mode == Mode::ReadScaling || mode == Mode::WalBound || mode == Mode::ColdScan {
            threshold *= 0.8;
        }
        println!("bench_gate: quick-mode candidate, tolerance widened to {tolerance:.2}");
    }

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };

    if mode == Mode::WireOverhead {
        let [candidate_path] = files.as_slice() else {
            usage("--wire-overhead expects one report file")
        };
        let (overheads, conn_per_sec) = gate::parse_wire_overheads(&read(candidate_path));
        println!("wire connections: {conn_per_sec:.1}/s");
        for (sessions, ratio) in &overheads {
            let verdict = if *ratio > threshold { "FAILED" } else { "ok" };
            println!(
                "wire_overhead {sessions} session(s): {ratio:.2}x embedded (ceiling {threshold:.2}x)  {verdict}"
            );
        }
        let failures = gate::wire_overhead_failures(&overheads, conn_per_sec, threshold);
        if !failures.is_empty() {
            for msg in &failures {
                eprintln!("bench_gate: {msg}");
            }
            std::process::exit(1);
        }
        println!("bench_gate: wire overhead within {threshold:.2}x at every session count");
        return;
    }

    if mode == Mode::WalBound {
        let [candidate_path] = files.as_slice() else {
            usage("--wal-bound expects one report file")
        };
        let soak = gate::parse_soak(&read(candidate_path));
        for key in [
            "wal_live_bytes_max",
            "wal_live_bytes_limit",
            "segments_max",
            "recovery_ms",
            "checkpoints",
            "segments_recycled",
            "throughput_ratio",
        ] {
            if let Some(v) = soak.get(key) {
                println!("soak {key}: {v}");
            }
        }
        let failures = gate::wal_bound_failures(&soak, threshold);
        if !failures.is_empty() {
            for msg in &failures {
                eprintln!("bench_gate: {msg}");
            }
            std::process::exit(1);
        }
        println!(
            "bench_gate: WAL bounded, recovery bounded, checkpoint-active \
             throughput >= {threshold:.2}x idle"
        );
        return;
    }

    if mode == Mode::ColdScan {
        let [candidate_path] = files.as_slice() else {
            usage("--cold-scan expects one report file")
        };
        let figs = gate::parse_cold_scan(&read(candidate_path));
        for key in [
            "tree_pages",
            "pool_pages",
            "cold_speedup",
            "pages_per_run_on",
            "prefetch_issued",
            "prefetch_hits",
            "prefetch_wasted",
            "delta_logical_reads",
            "delta_physical_reads",
            "mb_per_sec",
            "pages_per_write_run",
        ] {
            if let Some(v) = figs.get(key) {
                println!("coldscan {key}: {v}");
            }
        }
        let failures = gate::cold_scan_failures(&figs, threshold);
        if !failures.is_empty() {
            for msg in &failures {
                eprintln!("bench_gate: {msg}");
            }
            std::process::exit(1);
        }
        println!(
            "bench_gate: prefetched cold scan >= {threshold:.2}x the prefetch-off \
             pass, with real hits and coalesced runs"
        );
        return;
    }

    if mode == Mode::ReadScaling {
        let [candidate_path] = files.as_slice() else {
            usage("--read-scaling expects one report file")
        };
        let tps = gate::parse_throughputs(&read(candidate_path));
        for ((config, sessions), rate) in &tps {
            if config == "read_mostly" {
                println!("read_mostly {sessions} session(s): {rate:9.1} stmt/s");
            }
        }
        let failures = gate::read_scaling_failures(&tps, threshold);
        if !failures.is_empty() {
            for msg in &failures {
                eprintln!("bench_gate: {msg}");
            }
            std::process::exit(1);
        }
        println!(
            "bench_gate: read-mostly throughput holds {threshold:.2}x the \
             1-session rate at 8 sessions"
        );
        return;
    }

    if mode == Mode::PreparedSpeedup {
        let [candidate_path] = files.as_slice() else {
            usage("--prepared-speedup expects one report file")
        };
        let speedups = gate::parse_prepared_speedups(&read(candidate_path));
        if speedups.is_empty() {
            eprintln!("bench_gate: no prepared_speedup section in {candidate_path}");
            std::process::exit(2);
        }
        let failures = gate::prepared_speedup_failures(&speedups, threshold);
        for (sessions, speedup) in &speedups {
            let target = if *sessions == 1 { threshold } else { 1.0 };
            let verdict = if *speedup <= 1.0 || (*sessions == 1 && *speedup < threshold) {
                "FAILED"
            } else {
                "ok"
            };
            println!(
                "prepared_speedup {sessions} session(s): {speedup:.2}x (target {target:.2}x)  {verdict}"
            );
        }
        if !failures.is_empty() {
            for msg in &failures {
                eprintln!("bench_gate: {msg}");
            }
            std::process::exit(1);
        }
        println!("bench_gate: prepared speedup holds at every session count");
        return;
    }

    let [baseline_path, candidate_path] = files.as_slice() else {
        usage("expected two report files")
    };
    let parse = match mode {
        Mode::ReadLatency => gate::parse_read_rates,
        Mode::Throughput => gate::parse_throughputs,
        Mode::ScanSpeedup => gate::parse_speedups,
        Mode::PreparedSpeedup
        | Mode::WireOverhead
        | Mode::ReadScaling
        | Mode::WalBound
        | Mode::ColdScan => {
            unreachable!("handled above")
        }
    };
    let baseline = parse(&read(baseline_path));
    let candidate = parse(&read(candidate_path));
    let comparisons = gate::compare(&baseline, &candidate);
    if comparisons.is_empty() {
        let key = match mode {
            Mode::ReadLatency => "(config, threads)",
            Mode::Throughput => "(config, sessions)",
            Mode::ScanSpeedup
            | Mode::PreparedSpeedup
            | Mode::WireOverhead
            | Mode::ReadScaling
            | Mode::WalBound
            | Mode::ColdScan => "(config, workers)",
        };
        eprintln!("bench_gate: no shared {key} pairs between the reports");
        std::process::exit(2);
    }

    let mut failed = false;
    for c in &comparisons {
        let regressed = match mode {
            Mode::ReadLatency => c.regressed(tolerance),
            // Throughput and speedup are both higher-is-better.
            Mode::Throughput
            | Mode::ScanSpeedup
            | Mode::PreparedSpeedup
            | Mode::WireOverhead
            | Mode::ReadScaling
            | Mode::WalBound
            | Mode::ColdScan => c.regressed_throughput(tolerance),
        };
        let verdict = if regressed {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        match mode {
            Mode::ReadLatency => println!(
                "{:<16} {} reader(s): baseline {:8.1} ns/read, candidate {:8.1} ns/read ({:+.1}%)  {verdict}",
                c.config,
                c.threads,
                c.baseline_ns,
                c.candidate_ns,
                (c.ratio - 1.0) * 100.0,
            ),
            Mode::Throughput => println!(
                "{:<20} {} session(s): baseline {:9.1} stmt/s, candidate {:9.1} stmt/s ({:+.1}%)  {verdict}",
                c.config,
                c.threads,
                c.baseline_ns,
                c.candidate_ns,
                (c.ratio - 1.0) * 100.0,
            ),
            Mode::ScanSpeedup
            | Mode::PreparedSpeedup
            | Mode::WireOverhead
            | Mode::ReadScaling
            | Mode::WalBound
            | Mode::ColdScan => {
                println!(
                    "{:<12} {} worker(s): baseline {:5.2}x, candidate {:5.2}x ({:+.1}%)  {verdict}",
                    c.config,
                    c.threads,
                    c.baseline_ns,
                    c.candidate_ns,
                    (c.ratio - 1.0) * 100.0,
                )
            }
        }
    }
    if failed {
        let what = match mode {
            Mode::ReadLatency => "read latency",
            Mode::Throughput => "throughput",
            Mode::ScanSpeedup
            | Mode::PreparedSpeedup
            | Mode::WireOverhead
            | Mode::ReadScaling
            | Mode::WalBound
            | Mode::ColdScan => "scan speedup",
        };
        eprintln!(
            "bench_gate: {what} regressed more than {:.0}% — see lines above",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!("bench_gate: all pairs within {:.0}%", tolerance * 100.0);
}

fn usage(err: &str) -> ! {
    eprintln!("bench_gate: {err}");
    eprintln!(
        "usage: bench_gate <baseline.json> <candidate.json> [--tolerance 0.25] [--quick] \
         [--throughput | --scan-speedup]\n       \
         bench_gate <candidate.json> --prepared-speedup [--threshold 1.3]\n       \
         bench_gate <candidate.json> --wire-overhead [--threshold 10.0]\n       \
         bench_gate <candidate.json> --read-scaling [--threshold 1.0]\n       \
         bench_gate <candidate.json> --wal-bound [--threshold 0.75]\n       \
         bench_gate <candidate.json> --cold-scan [--threshold 1.0]"
    );
    std::process::exit(2);
}
