//! Per-phase cost trailers over the unified metrics registry.
//!
//! Benchmarks mark phase boundaries; each mark yields the counter
//! deltas accumulated since the previous one as a [`MetricsSnapshot`],
//! printable as a one-line trailer (`name=value` pairs, non-zero only).

use grt_metrics::{Metrics, MetricsSnapshot};
use std::sync::Arc;

/// Tracks a registry across benchmark phases.
pub struct CostTrailer {
    metrics: Arc<Metrics>,
    last: MetricsSnapshot,
}

impl CostTrailer {
    /// Starts tracking; the first phase diffs against this point.
    pub fn new(metrics: Arc<Metrics>) -> CostTrailer {
        let last = metrics.snapshot();
        CostTrailer { metrics, last }
    }

    /// Ends the current phase: returns the deltas since the previous
    /// mark and starts the next phase.
    pub fn phase(&mut self) -> MetricsSnapshot {
        let now = self.metrics.snapshot();
        let diff = now.since(&self.last);
        self.last = now;
        diff
    }

    /// Formats a phase delta as an indented `[label] k=v ...` line.
    pub fn line(label: &str, diff: &MetricsSnapshot) -> String {
        format!("    [{label}] {diff}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_diff_against_the_previous_mark() {
        let metrics = Metrics::shared();
        let c = metrics.counter("x");
        let mut trailer = CostTrailer::new(Arc::clone(&metrics));
        c.add(3);
        assert_eq!(trailer.phase().get("x"), 3);
        c.add(2);
        let d = trailer.phase();
        assert_eq!(d.get("x"), 2, "second phase sees only its own delta");
        assert!(CostTrailer::line("p", &d).contains("[p] x=2"));
    }
}
