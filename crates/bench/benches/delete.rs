//! abl-delete (wall time): index-driven deletion under the two
//! scan-restart policies of Section 5.5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grt_blade::{install_grtree_blade, DeletePolicy, GrTreeAmOptions};
use grt_grtree::GrTreeOptions;
use grt_ids::{Database, DatabaseOptions};
use grt_temporal::{Day, MockClock};
use std::sync::Arc;

fn run_once(policy: DeletePolicy) -> u64 {
    let clock = MockClock::new(Day(11_000));
    let db = Database::new(DatabaseOptions {
        clock: Arc::new(clock.clone()),
        ..Default::default()
    });
    install_grtree_blade(
        &db,
        GrTreeAmOptions {
            tree: GrTreeOptions {
                max_entries: 8,
                ..Default::default()
            },
            delete_policy: policy,
            ..Default::default()
        },
    )
    .unwrap();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (id integer, pad text, Time_Extent GRT_TimeExtent_t)")
        .unwrap();
    conn.exec("CREATE INDEX tix ON t(Time_Extent grt_opclass) USING grtree_am")
        .unwrap();
    let pad = "x".repeat(400);
    for i in 0..200i32 {
        clock.set(Day(11_000 + i));
        let (y, m, d) = Day(11_000 + i).to_ymd();
        conn.exec(&format!(
            "INSERT INTO t VALUES ({i}, '{pad}', '{m:02}/{d:02}/{y}, UC, {m:02}/{d:02}/{y}, NOW')"
        ))
        .unwrap();
    }
    clock.set(Day(12_000));
    conn.exec(
        "DELETE FROM t WHERE Overlaps(Time_Extent, \
         '02/18/2000, 12/31/2000, 02/01/2000, 12/31/2000')",
    )
    .unwrap();
    db.io_stats().snapshot().logical_reads
}

fn bench_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("delete");
    group.sample_size(10);
    for (name, policy) in [
        ("restart-on-condense", DeletePolicy::RestartOnCondense),
        ("restart-always", DeletePolicy::RestartAlways),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 200), &policy, |b, p| {
            b.iter(|| run_once(*p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_delete);
criterion_main!(benches);
