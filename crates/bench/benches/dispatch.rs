//! abl-dispatch (wall time): hard-coded strategy-function invocation
//! versus dynamic UDR resolution — "the cost of this extensibility is
//! the overhead of dynamic resolution and execution of strategy and
//! support functions" (Section 5.2).

use criterion::{criterion_group, criterion_main, Criterion};
use grt_blade::{extent_to_value, install_grtree_blade, GrTreeAmOptions};
use grt_ids::{Database, DatabaseOptions, Value};
use grt_temporal::{Day, Predicate, TimeExtent, TtEnd, VtEnd};

fn extents(n: i32) -> Vec<TimeExtent> {
    (0..n)
        .map(|i| {
            let base = (i * 13) % 500;
            TimeExtent::from_parts(
                Day(base),
                if i % 2 == 0 {
                    TtEnd::Uc
                } else {
                    TtEnd::Ground(Day(base + 20))
                },
                Day(base - i % 7),
                if i % 3 == 0 {
                    VtEnd::Now
                } else {
                    VtEnd::Ground(Day(base + 30))
                },
            )
            .unwrap_or_else(|_| {
                TimeExtent::from_parts(Day(base), TtEnd::Uc, Day(base), VtEnd::Now).unwrap()
            })
        })
        .collect()
}

fn bench_dispatch(c: &mut Criterion) {
    let db = Database::new(DatabaseOptions::default());
    install_grtree_blade(&db, GrTreeAmOptions::default()).unwrap();
    let data = extents(512);
    let query = TimeExtent::from_parts(Day(100), TtEnd::Uc, Day(100), VtEnd::Now).unwrap();
    let ct = Day(900);

    let mut group = c.benchmark_group("dispatch");
    // Hard-coded: the direct call the blade uses internally.
    group.bench_function("hard-coded", |b| {
        b.iter(|| {
            data.iter()
                .filter(|e| Predicate::Overlaps.eval(e, &query, ct))
                .count()
        })
    });
    // Dynamic: resolve the registered UDR and invoke it per pair, as a
    // fully extensible operator class would.
    let ctx = grt_ids::AmContext::for_tests();
    let query_value = extent_to_value(&query);
    group.bench_function("dynamic-udr", |b| {
        b.iter(|| {
            data.iter()
                .filter(|e| {
                    let args = vec![extent_to_value(e), query_value.clone()];
                    let conn = db.connect();
                    let _ = conn; // session per batch would be cheaper; this is the pessimistic path
                    matches!(db_call(&db, "Overlaps", &args, &ctx), Ok(Value::Bool(true)))
                })
                .count()
        })
    });
    group.finish();
}

/// Resolves and invokes a UDR through the registry — the dynamic path.
fn db_call(
    db: &Database,
    name: &str,
    args: &[Value],
    ctx: &grt_ids::AmContext,
) -> Result<Value, grt_ids::IdsError> {
    let types: Vec<Option<grt_ids::DataType>> = args.iter().map(|v| v.data_type()).collect();
    let routine = db.resolve_routine(name, &types)?;
    (routine.imp)(args, ctx)
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
