//! abl-concurrency (wall time): LO-level two-phase locking with one
//! large object per index (readers and writers serialize on the whole
//! index) versus a partitioned index (finer effective granularity) —
//! quantifying Section 5.3's complaint that sbspace locking is "too
//! high-level ... which may not be efficient in a multi-user
//! environment".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grt_grtree::{GrTree, GrTreeOptions};
use grt_sbspace::{IsolationLevel, LoId, LockMode, Sbspace, SbspaceOptions};
use grt_temporal::{Day, Predicate, TimeExtent, TtEnd, VtEnd};
use std::time::Duration;

fn extent(i: i32) -> TimeExtent {
    let base = 10_000 + (i * 3) % 400;
    TimeExtent::from_parts(Day(base), TtEnd::Uc, Day(base), VtEnd::Now).unwrap()
}

/// Builds K partition LOs, preloaded with rows, and returns their ids.
fn setup(k: usize) -> (Sbspace, Vec<LoId>) {
    let sb = Sbspace::mem(SbspaceOptions {
        pool_pages: 1 << 14,
        lock_timeout: Duration::from_secs(20),
        ..Default::default()
    });
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    let mut los = Vec::new();
    for p in 0..k {
        let lo = sb.create_lo(&txn).unwrap();
        let handle = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        let mut tree = GrTree::create(
            handle,
            GrTreeOptions {
                max_entries: 42,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..200i32 {
            if i as usize % k == p {
                tree.insert(extent(i), i as u64, Day(10_500)).unwrap();
            }
        }
        tree.into_lo().unwrap().close().unwrap();
        los.push(lo);
    }
    txn.commit().unwrap();
    (sb, los)
}

/// Fixed work: 2 writer threads x 30 insert-transactions, 4 reader
/// threads x 60 query-transactions, spread over the K partitions.
fn run_mixed(sb: &Sbspace, los: &[LoId]) {
    std::thread::scope(|s| {
        for w in 0..2u64 {
            s.spawn(move || {
                for i in 0..30 {
                    let txn = sb.begin(IsolationLevel::ReadCommitted);
                    let lo = los[(i as usize) % los.len()];
                    let handle = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
                    let mut tree = GrTree::open(handle).unwrap();
                    tree.insert(extent(500 + i), 10_000 + w * 1000 + i as u64, Day(10_600))
                        .unwrap();
                    tree.into_lo().unwrap().close().unwrap();
                    txn.commit().unwrap();
                }
            });
        }
        for _ in 0..4 {
            s.spawn(move || {
                let q = TimeExtent::from_parts(Day(10_100), TtEnd::Uc, Day(10_100), VtEnd::Now)
                    .unwrap();
                for i in 0..60 {
                    let txn = sb.begin(IsolationLevel::ReadCommitted);
                    let lo = los[i % los.len()];
                    let handle = sb.open_lo(&txn, lo, LockMode::Shared).unwrap();
                    let tree = GrTree::open(handle).unwrap();
                    let _ = tree.search(Predicate::Overlaps, &q, Day(10_700)).unwrap();
                    tree.into_lo().unwrap().close().unwrap();
                    txn.commit().unwrap();
                }
            });
        }
    });
}

/// The same fixed workload against the node-latched "in-kernel" tree
/// the paper says sbspaces preclude (Section 5.3).
fn run_mixed_latched(tree: &grt_grtree::ConcurrentGrTree) {
    std::thread::scope(|s| {
        for w in 0..2u64 {
            s.spawn(move || {
                for i in 0..30 {
                    tree.insert(extent(500 + i), 20_000 + w * 1000 + i as u64, Day(10_600));
                }
            });
        }
        for _ in 0..4 {
            s.spawn(move || {
                let q = TimeExtent::from_parts(Day(10_100), TtEnd::Uc, Day(10_100), VtEnd::Now)
                    .unwrap();
                for _ in 0..60 {
                    let _ = tree.search(Predicate::Overlaps, &q, Day(10_700));
                }
            });
        }
    });
}

/// Read-only scan: a fixed total of 40 query transactions (25 searches
/// each) over the K partitions through the pinned node path, divided
/// evenly among `threads` readers. With fixed total work the ideal
/// curve is flat (or falling, given spare cores); growth with the
/// thread count is contention in the pool and lock manager.
fn run_readers(sb: &Sbspace, los: &[LoId], threads: usize) {
    let per_thread = 40 / threads;
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(move || {
                for i in 0..per_thread {
                    let txn = sb.begin(IsolationLevel::ReadCommitted);
                    let lo = los[i % los.len()];
                    let handle = sb.open_lo(&txn, lo, LockMode::Shared).unwrap();
                    let tree = GrTree::open(handle).unwrap();
                    for d in 0..25 {
                        let day = Day(10_000 + d * 16);
                        let q = TimeExtent::from_parts(day, TtEnd::Uc, day, VtEnd::Now).unwrap();
                        let _ = tree.search(Predicate::Overlaps, &q, Day(10_700)).unwrap();
                    }
                    tree.into_lo().unwrap().close().unwrap();
                    txn.commit().unwrap();
                }
            });
        }
    });
}

/// Multi-reader scaling of the sharded buffer pool: fixed per-thread
/// work, so flat times across thread counts mean linear read scaling.
fn bench_reader_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("reader-scaling");
    group.sample_size(10);
    let (sb, los) = setup(8);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("readers", threads), &threads, |b, &t| {
            b.iter(|| run_readers(&sb, &los, t))
        });
    }
    group.finish();
}

fn bench_concurrency(c: &mut Criterion) {
    let mut group = c.benchmark_group("lo-locking");
    group.sample_size(10);
    for k in [1usize, 8] {
        let (sb, los) = setup(k);
        group.bench_with_input(BenchmarkId::new("partitions", k), &k, |b, _| {
            b.iter(|| run_mixed(&sb, &los))
        });
    }
    // The in-kernel alternative: per-node latches, no LO locks at all.
    let latched = grt_grtree::ConcurrentGrTree::new(42);
    for i in 0..200i32 {
        latched.insert(extent(i), i as u64, Day(10_500));
    }
    group.bench_function("node-latched (in-kernel)", |b| {
        b.iter(|| run_mixed_latched(&latched))
    });
    group.finish();
}

criterion_group!(benches, bench_concurrency, bench_reader_scaling);
criterion_main!(benches);
