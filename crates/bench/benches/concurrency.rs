//! abl-concurrency (wall time): LO-level two-phase locking with one
//! large object per index (readers and writers serialize on the whole
//! index) versus a partitioned index (finer effective granularity) —
//! quantifying Section 5.3's complaint that sbspace locking is "too
//! high-level ... which may not be efficient in a multi-user
//! environment".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grt_grtree::{GrTree, GrTreeOptions};
use grt_sbspace::{IsolationLevel, LoId, LockMode, Sbspace, SbspaceOptions};
use grt_temporal::{Day, Predicate, TimeExtent, TtEnd, VtEnd};
use std::time::Duration;

fn extent(i: i32) -> TimeExtent {
    let base = 10_000 + (i * 3) % 400;
    TimeExtent::from_parts(Day(base), TtEnd::Uc, Day(base), VtEnd::Now).unwrap()
}

/// Builds K partition LOs, preloaded with rows, and returns their ids.
fn setup(k: usize) -> (Sbspace, Vec<LoId>) {
    let sb = Sbspace::mem(SbspaceOptions {
        pool_pages: 1 << 14,
        lock_timeout: Duration::from_secs(20),
    });
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    let mut los = Vec::new();
    for p in 0..k {
        let lo = sb.create_lo(&txn).unwrap();
        let handle = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        let mut tree = GrTree::create(
            handle,
            GrTreeOptions {
                max_entries: 42,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..200i32 {
            if i as usize % k == p {
                tree.insert(extent(i), i as u64, Day(10_500)).unwrap();
            }
        }
        tree.into_lo().unwrap().close().unwrap();
        los.push(lo);
    }
    txn.commit().unwrap();
    (sb, los)
}

/// Fixed work: 2 writer threads x 30 insert-transactions, 4 reader
/// threads x 60 query-transactions, spread over the K partitions.
fn run_mixed(sb: &Sbspace, los: &[LoId]) {
    std::thread::scope(|s| {
        for w in 0..2u64 {
            s.spawn(move || {
                for i in 0..30 {
                    let txn = sb.begin(IsolationLevel::ReadCommitted);
                    let lo = los[(i as usize) % los.len()];
                    let handle = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
                    let mut tree = GrTree::open(handle).unwrap();
                    tree.insert(extent(500 + i), 10_000 + w * 1000 + i as u64, Day(10_600))
                        .unwrap();
                    tree.into_lo().unwrap().close().unwrap();
                    txn.commit().unwrap();
                }
            });
        }
        for _ in 0..4 {
            s.spawn(move || {
                let q = TimeExtent::from_parts(Day(10_100), TtEnd::Uc, Day(10_100), VtEnd::Now)
                    .unwrap();
                for i in 0..60 {
                    let txn = sb.begin(IsolationLevel::ReadCommitted);
                    let lo = los[i % los.len()];
                    let handle = sb.open_lo(&txn, lo, LockMode::Shared).unwrap();
                    let tree = GrTree::open(handle).unwrap();
                    let _ = tree.search(Predicate::Overlaps, &q, Day(10_700)).unwrap();
                    tree.into_lo().unwrap().close().unwrap();
                    txn.commit().unwrap();
                }
            });
        }
    });
}

/// The same fixed workload against the node-latched "in-kernel" tree
/// the paper says sbspaces preclude (Section 5.3).
fn run_mixed_latched(tree: &grt_grtree::ConcurrentGrTree) {
    std::thread::scope(|s| {
        for w in 0..2u64 {
            s.spawn(move || {
                for i in 0..30 {
                    tree.insert(extent(500 + i), 20_000 + w * 1000 + i as u64, Day(10_600));
                }
            });
        }
        for _ in 0..4 {
            s.spawn(move || {
                let q = TimeExtent::from_parts(Day(10_100), TtEnd::Uc, Day(10_100), VtEnd::Now)
                    .unwrap();
                for _ in 0..60 {
                    let _ = tree.search(Predicate::Overlaps, &q, Day(10_700));
                }
            });
        }
    });
}

fn bench_concurrency(c: &mut Criterion) {
    let mut group = c.benchmark_group("lo-locking");
    group.sample_size(10);
    for k in [1usize, 8] {
        let (sb, los) = setup(k);
        group.bench_with_input(BenchmarkId::new("partitions", k), &k, |b, _| {
            b.iter(|| run_mixed(&sb, &los))
        });
    }
    // The in-kernel alternative: per-node latches, no LO locks at all.
    let latched = grt_grtree::ConcurrentGrTree::new(42);
    for i in 0..200i32 {
        latched.insert(extent(i), i as u64, Day(10_500));
    }
    group.bench_function("node-latched (in-kernel)", |b| {
        b.iter(|| run_mixed_latched(&latched))
    });
    group.finish();
}

criterion_group!(benches, bench_concurrency);
criterion_main!(benches);
