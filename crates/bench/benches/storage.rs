//! abl-storage (wall time): one large object for the whole index versus
//! partitioning the index across several large objects (the Section 5.3
//! granularity spectrum).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grt_grtree::{GrTree, GrTreeOptions};
use grt_sbspace::{LockMode, Sbspace, SbspaceOptions};
use grt_temporal::Predicate;
use grt_workload::{History, HistoryEvent, HistoryParams, QueryKind, QueryParams, QuerySet};

fn run_partitioned(h: &History, queries: &grt_workload::QuerySet, k: usize) -> u64 {
    let sb = Sbspace::mem(SbspaceOptions {
        pool_pages: 1 << 14,
        ..Default::default()
    });
    let txn = sb.begin(Default::default());
    let mut trees = Vec::new();
    for _ in 0..k {
        let lo = sb.create_lo(&txn).unwrap();
        let handle = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        trees.push(
            GrTree::create(
                handle,
                GrTreeOptions {
                    max_entries: 42,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
    }
    for (day, ev) in &h.events {
        match ev {
            HistoryEvent::Insert { id, extent } => {
                trees[(*id as usize) % k]
                    .insert(*extent, *id, *day)
                    .unwrap();
            }
            HistoryEvent::LogicalDelete { id, old, new } => {
                let tr = &mut trees[(*id as usize) % k];
                assert!(tr.delete(old, *id, *day).unwrap().found);
                tr.insert(*new, *id, *day).unwrap();
            }
        }
    }
    let mut results = 0u64;
    for q in &queries.queries {
        for tr in &trees {
            results += tr.search(Predicate::Overlaps, q, h.end).unwrap().len() as u64;
        }
    }
    for tr in trees {
        tr.into_lo().unwrap().close().unwrap();
    }
    txn.commit().unwrap();
    results
}

fn bench_storage(c: &mut Criterion) {
    let h = History::generate(HistoryParams {
        inserts: 800,
        now_relative_fraction: 0.5,
        seed: 11,
        ..Default::default()
    });
    let queries = QuerySet::generate(
        QueryParams {
            count: 40,
            kind: QueryKind::Window,
            tt_range: (h.params.start, h.end),
            window: 20,
            seed: 5,
        },
        h.end,
    );
    let mut group = c.benchmark_group("storage-granularity");
    group.sample_size(10);
    for k in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("partitions", k), &k, |b, &k| {
            b.iter(|| run_partitioned(&h, &queries, k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
