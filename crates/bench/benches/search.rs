//! perf-search (wall time): query latency of the GR-tree against the
//! two R*-tree adaptations, as the now-relative fraction varies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grt_bench::{apply_history_gr, apply_history_rstar, run_queries_gr, run_queries_rstar};
use grt_rstar::bitemporal::NowStrategy;
use grt_workload::{History, HistoryParams, QueryKind, QueryParams, QuerySet};

fn history(frac: f64) -> History {
    History::generate(HistoryParams {
        inserts: 1500,
        now_relative_fraction: frac,
        delete_rate: 0.3,
        seed: 11,
        ..Default::default()
    })
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("search");
    group.sample_size(10);
    for frac in [0.0, 0.5, 1.0] {
        let h = history(frac);
        let queries = QuerySet::generate(
            QueryParams {
                count: 30,
                kind: QueryKind::Window,
                tt_range: (h.params.start, h.end),
                window: 20,
                seed: 5,
            },
            h.end,
        )
        .queries;
        let ct = h.end;
        let gr = apply_history_gr(&h, 1 << 16, 42);
        let maxts = apply_history_rstar(&h, NowStrategy::MaxTimestamp, 1 << 16, 42);
        let horizon = apply_history_rstar(&h, NowStrategy::Horizon { slack: 365 }, 1 << 16, 42);
        group.bench_with_input(BenchmarkId::new("grtree", frac), &frac, |b, _| {
            b.iter(|| run_queries_gr(&gr, &queries, ct))
        });
        group.bench_with_input(BenchmarkId::new("rstar-maxts", frac), &frac, |b, _| {
            b.iter(|| run_queries_rstar(&maxts, &queries, ct))
        });
        group.bench_with_input(BenchmarkId::new("rstar-horizon", frac), &frac, |b, _| {
            b.iter(|| run_queries_rstar(&horizon, &queries, ct))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
