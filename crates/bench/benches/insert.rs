//! perf-insert (wall time): replaying a bitemporal history into each
//! index, including the horizon baseline's refresh obligation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grt_bench::{apply_history_gr, apply_history_rstar};
use grt_rstar::bitemporal::NowStrategy;
use grt_workload::{History, HistoryParams};

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert");
    group.sample_size(10);
    for frac in [0.0, 1.0] {
        let h = History::generate(HistoryParams {
            inserts: 800,
            now_relative_fraction: frac,
            delete_rate: 0.3,
            seed: 11,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::new("grtree", frac), &frac, |b, _| {
            b.iter(|| apply_history_gr(&h, 1 << 14, 42).tree.len())
        });
        group.bench_with_input(BenchmarkId::new("rstar-maxts", frac), &frac, |b, _| {
            b.iter(|| {
                apply_history_rstar(&h, NowStrategy::MaxTimestamp, 1 << 14, 42)
                    .tree
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("rstar-horizon", frac), &frac, |b, _| {
            b.iter(|| {
                apply_history_rstar(&h, NowStrategy::Horizon { slack: 365 }, 1 << 14, 42)
                    .tree
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert);
criterion_main!(benches);
