//! The observability substrate of the engine: counters, latency
//! histograms, and the [`Metrics`] registry that names them.
//!
//! The paper's only window into the running server is the Section 6.4
//! trace facility; everything quantitative (how many node splits a
//! statement cost, how many buffer-pool evictions a workload caused)
//! had to be inferred from trace output. This crate is the missing
//! counter layer: every subsystem registers its counters here, and one
//! [`MetricsSnapshot`] diff answers "what did that phase cost".
//!
//! Design constraints:
//!
//! * **lock-cheap hot path** — a [`Counter`] is a clone-able handle to
//!   one atomic; incrementing takes no lock. The registry's map is only
//!   locked at registration/snapshot time, never per event;
//! * **one snapshot type** — counters and histograms from every layer
//!   (`ids.*`, `grtree.*`, `rstar.*`, `gist.*`, `sbspace.*`, `trace.*`)
//!   land in the same [`MetricsSnapshot`], and
//!   [`MetricsSnapshot::since`] yields per-phase deltas.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone event counter: a clone-able handle to one shared atomic.
///
/// Cloning is cheap and every clone observes the same value, which is
/// what lets a subsystem keep a private handle on its hot path while
/// the registry snapshots the same cell by name.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// True when two handles share the same cell.
    pub fn same_cell(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.cell, &other.cell)
    }
}

/// A level gauge: like [`Counter`] a clone-able handle to one shared
/// atomic, but the value goes **down** as well as up — it tracks how
/// many of something exist right now (open snapshots, live sessions),
/// not how many events ever happened. Snapshot diffs therefore carry
/// gauges at their current level rather than as deltas.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Raises the level by one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Lowers the level by one (saturating at zero — a stray extra
    /// decrement is a bug upstream, but must not wrap the gauge to
    /// `u64::MAX` and poison every later reading).
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .cell
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Sets the level outright — for gauges that mirror an externally
    /// measured quantity (bytes on disk, queue depth) rather than a
    /// count this process increments and decrements itself.
    #[inline]
    pub fn set(&self, level: u64) {
        self.cell.store(level, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// True when two handles share the same cell.
    pub fn same_cell(&self, other: &Gauge) -> bool {
        Arc::ptr_eq(&self.cell, &other.cell)
    }
}

/// Number of histogram buckets: powers of two of microseconds from
/// `<1µs` up to `>=2^(BUCKETS-2)µs`, plus the overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 22;

/// A fixed-bucket latency histogram. Bucket `i` counts observations
/// with `value_ns < 1000 * 2^i`; the last bucket is the overflow.
///
/// Like [`Counter`], a `Histogram` is a clone-able handle to shared
/// atomics: recording takes two relaxed atomic adds and no lock.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug, Default)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Upper bound (exclusive, in nanoseconds) of bucket `i`; `None`
    /// for the overflow bucket.
    pub fn bucket_bound_ns(i: usize) -> Option<u64> {
        if i + 1 < HISTOGRAM_BUCKETS {
            Some(1000u64 << i)
        } else {
            None
        }
    }

    /// Records one observation in nanoseconds.
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        let i = (0..HISTOGRAM_BUCKETS - 1)
            .find(|&i| ns < (1000u64 << i))
            .unwrap_or(HISTOGRAM_BUCKETS - 1);
        self.inner.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one observation from a [`std::time::Duration`].
    #[inline]
    pub fn observe(&self, d: std::time::Duration) {
        self.observe_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (b, cell) in buckets.iter_mut().zip(&self.inner.buckets) {
            *b = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.inner.count.load(Ordering::Relaxed),
            sum_ns: self.inner.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`Histogram::bucket_bound_ns`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values in nanoseconds.
    pub sum_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Bucket-wise delta since an earlier snapshot.
    #[must_use]
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (b, (now, then)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *b = now.saturating_sub(*then);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum_ns: self.sum_ns.saturating_sub(earlier.sum_ns),
        }
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (ns) of the bucket containing the `q`-quantile
    /// observation (`q` in `0.0..=1.0`); 0 when empty. The overflow
    /// bucket reports `u64::MAX`.
    pub fn quantile_bound_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Histogram::bucket_bound_ns(i).unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }
}

/// Operation counters common to the disk trees (GR-tree, R*-tree,
/// GiST). Default-constructed the counters are detached — a tree
/// increments them at full speed with nobody watching; opened through
/// an engine, [`TreeMetrics::registered`] swaps in registry-backed
/// cells so the same bumps feed `SELECT * FROM sysmetrics`.
#[derive(Debug, Clone, Default)]
pub struct TreeMetrics {
    /// Searches started (one per cursor).
    pub searches: Counter,
    /// Nodes read while descending or scanning.
    pub nodes_visited: Counter,
    /// Node splits during insertion.
    pub splits: Counter,
    /// Condense passes after deletion (underfull nodes dissolved).
    pub condenses: Counter,
    /// Entries evicted by forced reinsertion.
    pub reinserts: Counter,
    /// `Hidden`-flag bounds resolved during search (GR-tree only).
    pub hidden_resolutions: Counter,
    /// NOW-relative extents resolved against current time during
    /// search (GR-tree only).
    pub now_resolutions: Counter,
}

impl TreeMetrics {
    /// Counters registered in `metrics` under `<prefix>.<name>` — e.g.
    /// prefix `"grtree"` yields `grtree.splits`. Get-or-register: every
    /// tree opened against the same registry shares the cells.
    pub fn registered(metrics: &Metrics, prefix: &str) -> TreeMetrics {
        TreeMetrics {
            searches: metrics.counter(&format!("{prefix}.searches")),
            nodes_visited: metrics.counter(&format!("{prefix}.nodes_visited")),
            splits: metrics.counter(&format!("{prefix}.splits")),
            condenses: metrics.counter(&format!("{prefix}.condenses")),
            reinserts: metrics.counter(&format!("{prefix}.reinserts")),
            hidden_resolutions: metrics.counter(&format!("{prefix}.hidden_resolutions")),
            now_resolutions: metrics.counter(&format!("{prefix}.now_resolutions")),
        }
    }
}

#[derive(Default)]
struct Registered {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The named registry: every subsystem's counters and histograms, one
/// level above the raw atomics. Shared by `Arc`; see [`Metrics::shared`].
#[derive(Default)]
pub struct Metrics {
    inner: RwLock<Registered>,
}

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// A fresh shared registry.
    pub fn shared() -> Arc<Metrics> {
        Arc::new(Metrics::new())
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use. The returned handle shares the registered cell, so
    /// callers resolve once and increment lock-free thereafter.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.read().counters.get(name) {
            return c.clone();
        }
        self.inner
            .write()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Registers an existing counter handle under `name` (adoption:
    /// e.g. the sbspace `IoStats` block exposing its cells by name).
    /// Returns the handle that is now registered — the given one, or
    /// the previously registered handle if the name was taken.
    pub fn adopt_counter(&self, name: &str, counter: Counter) -> Counter {
        self.inner
            .write()
            .counters
            .entry(name.to_string())
            .or_insert(counter)
            .clone()
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.read().gauges.get(name) {
            return g.clone();
        }
        self.inner
            .write()
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.inner.read().histograms.get(name) {
            return h.clone();
        }
        self.inner
            .write()
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Takes a point-in-time snapshot of every registered counter and
    /// histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.read();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a whole [`Metrics`] registry — the one
/// snapshot type every layer reports through.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter (0 when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Level of a gauge (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of a histogram (empty when absent).
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms.get(name).copied().unwrap_or_default()
    }

    /// Per-name deltas since an earlier snapshot. Names absent from
    /// `earlier` diff against zero; names absent from `self` keep the
    /// saturated zero delta.
    #[must_use]
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.get(k))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.since(&earlier.histogram(k))))
            .collect();
        MetricsSnapshot {
            counters,
            // Gauges are levels, not monotone totals — a delta between
            // two levels has no meaning, so a diff carries the current
            // level unchanged.
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// The non-zero counters, for compact phase trailers.
    pub fn nonzero(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters
            .iter()
            .filter(|(_, &v)| v > 0)
            .map(|(k, &v)| (k.as_str(), v))
    }
}

impl std::fmt::Display for MetricsSnapshot {
    /// One `name=value` pair per non-zero counter, space-separated;
    /// histograms render as `name{n,mean_ns}`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (k, v) in self.nonzero() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        for (k, &v) in self.gauges.iter().filter(|(_, &v)| v > 0) {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        for (k, h) in &self.histograms {
            if h.count == 0 {
                continue;
            }
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}{{n={},mean_ns={}}}", h.count, h.mean_ns())?;
            first = false;
        }
        if first {
            write!(f, "(no activity)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_a_cell() {
        let m = Metrics::new();
        let a = m.counter("x.events");
        let b = m.counter("x.events");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(a.same_cell(&b));
        assert_eq!(m.snapshot().get("x.events"), 3);
        assert_eq!(m.snapshot().get("x.missing"), 0);
    }

    #[test]
    fn adopt_counter_registers_foreign_cells() {
        let m = Metrics::new();
        let mine = Counter::new();
        mine.add(7);
        let adopted = m.adopt_counter("io.reads", mine.clone());
        assert!(adopted.same_cell(&mine));
        mine.inc();
        assert_eq!(m.snapshot().get("io.reads"), 8);
        // A second adoption under the same name keeps the first cell.
        let other = Counter::new();
        let kept = m.adopt_counter("io.reads", other.clone());
        assert!(kept.same_cell(&mine));
        assert!(!kept.same_cell(&other));
    }

    #[test]
    fn gauge_levels_move_both_ways() {
        let m = Metrics::new();
        let g = m.gauge("x.open");
        let g2 = m.gauge("x.open");
        assert!(g.same_cell(&g2));
        g.inc();
        g.inc();
        g2.dec();
        assert_eq!(g.get(), 1);
        assert_eq!(m.snapshot().gauge("x.open"), 1);
        assert_eq!(m.snapshot().gauge("x.missing"), 0);
        // Decrement saturates instead of wrapping.
        g.dec();
        g.dec();
        assert_eq!(g.get(), 0);
        // A diff reports the current level, not a delta.
        let before = m.snapshot();
        g.inc();
        assert_eq!(m.snapshot().since(&before).gauge("x.open"), 1);
        // An outright set overrides whatever level was there.
        g.set(42);
        assert_eq!(g2.get(), 42);
        g.dec();
        assert_eq!(g.get(), 41);
    }

    #[test]
    fn snapshot_diff() {
        let m = Metrics::new();
        let c = m.counter("a");
        c.add(5);
        let before = m.snapshot();
        c.add(3);
        m.counter("b").inc();
        let d = m.snapshot().since(&before);
        assert_eq!(d.get("a"), 3);
        assert_eq!(d.get("b"), 1);
        assert_eq!(d.nonzero().count(), 2);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile_bound_ns(0.5), 0);
        // 900ns -> bucket 0 (<1µs); 1500ns -> bucket 1 (<2µs);
        // something huge -> overflow.
        h.observe_ns(900);
        h.observe_ns(1500);
        h.observe_ns(u64::MAX / 2);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(s.quantile_bound_ns(0.33), 1000);
        assert_eq!(s.quantile_bound_ns(0.66), 2000);
        assert_eq!(s.quantile_bound_ns(1.0), u64::MAX);
        assert!(s.mean_ns() > 1000);
    }

    #[test]
    fn histogram_diff_via_registry() {
        let m = Metrics::new();
        let h = m.histogram("lat");
        h.observe(std::time::Duration::from_micros(3));
        let before = m.snapshot();
        h.observe(std::time::Duration::from_micros(3));
        h.observe(std::time::Duration::from_micros(3));
        let d = m.snapshot().since(&before);
        assert_eq!(d.histogram("lat").count, 2);
        assert_eq!(before.histogram("lat").count, 1);
    }

    #[test]
    fn display_is_compact() {
        let m = Metrics::new();
        assert_eq!(m.snapshot().to_string(), "(no activity)");
        m.counter("a.x").add(2);
        m.counter("a.zero");
        m.histogram("t").observe_ns(10);
        let s = m.snapshot().to_string();
        assert!(s.contains("a.x=2"));
        assert!(!s.contains("a.zero"));
        assert!(s.contains("t{n=1"));
    }
}
