//! Bitemporal update-stream generation.

use grt_temporal::{Day, TimeExtent, VtEnd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic history.
#[derive(Debug, Clone, Copy)]
pub struct HistoryParams {
    /// Tuples inserted over the lifetime of the history.
    pub inserts: usize,
    /// Probability that an insertion is now-relative (`VTend = NOW`);
    /// otherwise the valid interval is fixed.
    pub now_relative_fraction: f64,
    /// Probability that a previously inserted, still-current tuple is
    /// logically deleted between two insertions.
    pub delete_rate: f64,
    /// Days between insertions (the transaction-time density).
    pub days_per_insert: i32,
    /// Mean length of fixed valid intervals, days.
    pub mean_valid_len: i32,
    /// Maximum backdating of `VTbegin` relative to insertion, days.
    pub max_backdate: i32,
    /// The first transaction day.
    pub start: Day,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HistoryParams {
    fn default() -> Self {
        HistoryParams {
            inserts: 1000,
            now_relative_fraction: 0.5,
            delete_rate: 0.3,
            days_per_insert: 1,
            mean_valid_len: 60,
            max_backdate: 30,
            start: Day(10_000),
            seed: 42,
        }
    }
}

/// One event of the history, in transaction-time order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryEvent {
    /// A new tuple enters the current state.
    Insert {
        /// Tuple id (doubles as rowid in index-level benchmarks).
        id: u64,
        /// The tuple's extent at insertion.
        extent: TimeExtent,
    },
    /// A current tuple is logically deleted: in the 4TS model the
    /// stored extent changes from `old` to `new` (`TTend` `UC` → day),
    /// which an index sees as delete(old) + insert(new).
    LogicalDelete {
        /// Tuple id.
        id: u64,
        /// The extent before deletion.
        old: TimeExtent,
        /// The extent after deletion.
        new: TimeExtent,
    },
}

/// A generated history plus its bookkeeping.
#[derive(Debug, Clone)]
pub struct History {
    /// Events in transaction-time order, each tagged with its day.
    pub events: Vec<(Day, HistoryEvent)>,
    /// The day after the last event (a natural "current time" for
    /// queries).
    pub end: Day,
    /// The parameters that generated it.
    pub params: HistoryParams,
}

impl History {
    /// Generates a history deterministically from its parameters.
    pub fn generate(params: HistoryParams) -> History {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut events = Vec::with_capacity(params.inserts * 2);
        // (id, current extent) of tuples still current.
        let mut open: Vec<(u64, TimeExtent)> = Vec::new();
        let mut day = params.start;
        for next_id in 0..params.inserts as u64 {
            day = day.plus(params.days_per_insert.max(1));
            // Maybe delete some current tuples first.
            while !open.is_empty() && rng.gen_bool(params.delete_rate.clamp(0.0, 0.95)) {
                let victim = rng.gen_range(0..open.len());
                let (id, old) = open.swap_remove(victim);
                let new = old.logical_delete(day).expect("open tuple is current");
                events.push((day, HistoryEvent::LogicalDelete { id, old, new }));
            }
            // Insert a new tuple.
            let backdate = rng.gen_range(0..=params.max_backdate.max(0));
            let vt_begin = day.plus(-backdate);
            let vt_end = if rng.gen_bool(params.now_relative_fraction.clamp(0.0, 1.0)) {
                VtEnd::Now
            } else {
                let len = 1 + rng.gen_range(0..(2 * params.mean_valid_len.max(1)));
                VtEnd::Ground(vt_begin.plus(len))
            };
            let extent = TimeExtent::insert(day, vt_begin, vt_end)
                .expect("generated extents satisfy the constraints");
            events.push((
                day,
                HistoryEvent::Insert {
                    id: next_id,
                    extent,
                },
            ));
            open.push((next_id, extent));
        }
        History {
            end: day.plus(1),
            events,
            params,
        }
    }

    /// The final stored state: every tuple's last extent (after its
    /// logical deletion, if any), keyed by id.
    pub fn final_state(&self) -> Vec<(u64, TimeExtent)> {
        let mut state: std::collections::BTreeMap<u64, TimeExtent> = Default::default();
        for (_, ev) in &self.events {
            match ev {
                HistoryEvent::Insert { id, extent } => {
                    state.insert(*id, *extent);
                }
                HistoryEvent::LogicalDelete { id, new, .. } => {
                    state.insert(*id, *new);
                }
            }
        }
        state.into_iter().collect()
    }

    /// Fraction of final tuples that are still now-relative.
    pub fn live_now_relative_fraction(&self) -> f64 {
        let state = self.final_state();
        if state.is_empty() {
            return 0.0;
        }
        state.iter().filter(|(_, e)| e.is_now_relative()).count() as f64 / state.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grt_temporal::TtEnd;

    #[test]
    fn deterministic_from_seed() {
        let p = HistoryParams::default();
        let a = History::generate(p);
        let b = History::generate(p);
        assert_eq!(a.events, b.events);
        let c = History::generate(HistoryParams { seed: 7, ..p });
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn events_are_legal_and_ordered() {
        let h = History::generate(HistoryParams {
            inserts: 500,
            ..Default::default()
        });
        let mut last = Day(0);
        for (day, ev) in &h.events {
            assert!(*day >= last, "transaction time is monotone");
            last = *day;
            match ev {
                HistoryEvent::Insert { extent, .. } => {
                    assert_eq!(extent.tt_begin, *day);
                    assert!(extent.is_current());
                    extent.spec().validate(*day).unwrap();
                }
                HistoryEvent::LogicalDelete { old, new, .. } => {
                    assert!(old.is_current());
                    assert_eq!(new.tt_end, TtEnd::Ground(day.pred()));
                    new.spec().validate(*day).unwrap();
                }
            }
        }
    }

    #[test]
    fn now_relative_fraction_tracks_parameter() {
        for frac in [0.0, 0.5, 1.0] {
            let h = History::generate(HistoryParams {
                inserts: 800,
                now_relative_fraction: frac,
                delete_rate: 0.0,
                ..Default::default()
            });
            let measured = h.live_now_relative_fraction();
            // With delete_rate 0 every tuple stays current (TTend = UC),
            // so all are now-relative in transaction time; measure the
            // valid-time fraction instead.
            let state = h.final_state();
            let vt_now = state
                .iter()
                .filter(|(_, e)| matches!(e.vt_end, VtEnd::Now))
                .count() as f64
                / state.len() as f64;
            assert!(
                (vt_now - frac).abs() < 0.06,
                "frac {frac}: measured {vt_now}"
            );
            assert!(measured >= vt_now);
        }
    }

    #[test]
    fn deletes_happen_and_freeze_tuples() {
        let h = History::generate(HistoryParams {
            inserts: 400,
            delete_rate: 0.5,
            ..Default::default()
        });
        let deletes = h
            .events
            .iter()
            .filter(|(_, e)| matches!(e, HistoryEvent::LogicalDelete { .. }))
            .count();
        assert!(deletes > 50, "only {deletes} deletions");
        let state = h.final_state();
        let closed = state.iter().filter(|(_, e)| !e.is_current()).count();
        assert!(closed > 50);
    }
}
