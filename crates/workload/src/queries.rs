//! Bitemporal query workloads.

use grt_temporal::{Day, TimeExtent, TtEnd, VtEnd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The classical bitemporal query shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// A point in (tt, vt): "as known at T1, was the fact true at T2?"
    Point,
    /// A rectangle window in both dimensions.
    Window,
    /// The current state: tt pinned to "now", a window in vt.
    CurrentState,
    /// A transaction timeslice: tt pinned to a past day, vt open.
    TransactionTimeslice,
}

/// Parameters of a query workload.
#[derive(Debug, Clone, Copy)]
pub struct QueryParams {
    /// Number of queries.
    pub count: usize,
    /// The query shape.
    pub kind: QueryKind,
    /// The data's transaction-time span (queries land inside it).
    pub tt_range: (Day, Day),
    /// Window edge length for `Window`/`CurrentState`, days.
    pub window: i32,
    /// RNG seed.
    pub seed: u64,
}

/// A generated query set.
#[derive(Debug, Clone)]
pub struct QuerySet {
    /// The queries as query extents (the argument of `Overlaps`).
    pub queries: Vec<TimeExtent>,
    /// The parameters that generated them.
    pub params: QueryParams,
}

impl QuerySet {
    /// Generates a deterministic query set. `ct` is the current time at
    /// which `CurrentState` queries are pinned.
    pub fn generate(params: QueryParams, ct: Day) -> QuerySet {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let (lo, hi) = (
            params.tt_range.0 .0,
            params.tt_range.1 .0.max(params.tt_range.0 .0 + 1),
        );
        let w = params.window.max(0);
        let mut queries = Vec::with_capacity(params.count);
        for _ in 0..params.count {
            let t = rng.gen_range(lo..hi);
            let v = rng.gen_range(lo..hi);
            let q = match params.kind {
                QueryKind::Point => TimeExtent::from_parts(
                    Day(t),
                    TtEnd::Ground(Day(t)),
                    Day(v),
                    VtEnd::Ground(Day(v)),
                ),
                QueryKind::Window => TimeExtent::from_parts(
                    Day(t),
                    TtEnd::Ground(Day(t + w)),
                    Day(v),
                    VtEnd::Ground(Day(v + w)),
                ),
                QueryKind::CurrentState => {
                    TimeExtent::from_parts(ct, TtEnd::Ground(ct), Day(v), VtEnd::Ground(Day(v + w)))
                }
                QueryKind::TransactionTimeslice => TimeExtent::from_parts(
                    Day(t),
                    TtEnd::Ground(Day(t)),
                    Day(lo - 1),
                    VtEnd::Ground(Day(hi + 1)),
                ),
            }
            .expect("query extents are legal");
            queries.push(q);
        }
        QuerySet { queries, params }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(kind: QueryKind) -> QueryParams {
        QueryParams {
            count: 50,
            kind,
            tt_range: (Day(10_000), Day(11_000)),
            window: 20,
            seed: 9,
        }
    }

    #[test]
    fn deterministic_and_in_range() {
        let ct = Day(11_000);
        for kind in [
            QueryKind::Point,
            QueryKind::Window,
            QueryKind::CurrentState,
            QueryKind::TransactionTimeslice,
        ] {
            let a = QuerySet::generate(params(kind), ct);
            let b = QuerySet::generate(params(kind), ct);
            assert_eq!(a.queries, b.queries);
            assert_eq!(a.queries.len(), 50);
            for q in &a.queries {
                assert!(q.tt_begin >= Day(9_999), "{q}");
                q.spec().validate(ct).unwrap();
            }
        }
    }

    #[test]
    fn current_state_pins_transaction_time() {
        let ct = Day(11_000);
        let qs = QuerySet::generate(params(QueryKind::CurrentState), ct);
        assert!(qs.queries.iter().all(|q| q.tt_begin == ct));
    }

    #[test]
    fn point_queries_are_points() {
        let qs = QuerySet::generate(params(QueryKind::Point), Day(11_000));
        for q in &qs.queries {
            assert_eq!(TtEnd::Ground(q.tt_begin), q.tt_end);
            assert_eq!(VtEnd::Ground(q.vt_begin), q.vt_end);
        }
    }
}
