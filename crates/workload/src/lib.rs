//! Synthetic bitemporal workloads.
//!
//! The GR-tree literature evaluates on synthetic update streams of
//! employee-style facts: tuples are inserted with valid-time intervals
//! that are fixed or now-relative, live for a while as part of the
//! current state, and are then logically deleted or modified. This
//! crate generates such histories and matching query workloads,
//! deterministically from a seed, parameterised by the **fraction of
//! now-relative data** — the key axis of the paper's performance
//! claims.

pub mod history;
pub mod queries;

pub use history::{History, HistoryEvent, HistoryParams};
pub use queries::{QueryKind, QueryParams, QuerySet};
