//! The `grt-server` binary: boots a fresh engine with the GR-tree
//! DataBlade installed and serves it over TCP until SIGTERM/SIGINT.
//!
//! ```text
//! grt-server [--addr HOST:PORT] [--max-sessions N] [--fetch-rows N]
//! ```
//!
//! On graceful shutdown it prints a reconciliation report — live
//! sessions left (must be 0) and the prepared open/close counters —
//! and exits nonzero if anything leaked, so the `server-e2e` CI job
//! can assert cleanliness from the exit code alone.

use grt_blade::{install_grtree_blade, GrTreeAmOptions};
use grt_ids::{Database, DatabaseOptions};
use grt_server::{Server, ServerOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set from the signal handler; the main loop polls it.
static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    STOP.store(true, Ordering::SeqCst);
}

/// Installs a handler for a POSIX signal. `std` links libc already;
/// declaring `signal` directly avoids an external crate dependency.
fn install_signal(signum: i32) {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
    unsafe {
        signal(signum, on_signal);
    }
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn main() {
    let mut opts = ServerOptions {
        addr: "127.0.0.1:7878".to_string(),
        ..Default::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("grt-server: {what} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr"),
            "--max-sessions" => {
                opts.max_sessions = value("--max-sessions").parse().unwrap_or_else(|_| {
                    eprintln!("grt-server: bad --max-sessions");
                    std::process::exit(2);
                })
            }
            "--fetch-rows" => {
                opts.fetch_rows = value("--fetch-rows").parse().unwrap_or_else(|_| {
                    eprintln!("grt-server: bad --fetch-rows");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!(
                    "usage: grt-server [--addr HOST:PORT] [--max-sessions N] [--fetch-rows N]"
                );
                return;
            }
            other => {
                eprintln!("grt-server: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let db = Database::new(DatabaseOptions::default());
    install_grtree_blade(&db, GrTreeAmOptions::default()).expect("blade install");

    install_signal(SIGTERM);
    install_signal(SIGINT);

    let mut handle = match Server::new(db.clone(), opts.clone()).start() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("grt-server: bind {} failed: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    println!(
        "grt-server: listening on {} (max {} sessions)",
        handle.local_addr(),
        opts.max_sessions
    );

    while !STOP.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("grt-server: shutting down");
    handle.shutdown();

    // Reconciliation report: after a graceful shutdown every session
    // is reaped and every prepared handle released.
    let leaked = handle.engine().pool.live();
    let m = db.metrics_snapshot();
    let opened = m.get("ids.sessions_opened");
    let closed = m.get("ids.sessions_closed");
    let p_open = m.get("ids.prepared_opened");
    let p_closed = m.get("ids.prepared_closed");
    println!(
        "grt-server: stopped, leaked={leaked} sessions={opened}/{closed} prepared={p_open}/{p_closed}"
    );
    if leaked != 0 || opened != closed || p_open != p_closed {
        eprintln!("grt-server: session reconciliation failed");
        std::process::exit(1);
    }
}
