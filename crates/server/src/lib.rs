//! The wire server: many TCP connections multiplexed onto engine
//! sessions.
//!
//! The paper's DataBlade runs inside a database *server* — clients
//! never link the engine, they speak a protocol to a long-lived
//! process that owns the sbspace. This crate is that layer for the
//! reproduction: a [`Server`] binds a listener, accepts connections
//! speaking the [`grt_client::proto`] frame protocol, and gives each
//! one an engine session for its lifetime.
//!
//! Three properties the tests (and the `server-e2e` CI job) hold it
//! to:
//!
//! * **Backpressure, not collapse.** Live sessions are bounded by a
//!   [`SessionPool`]; a connection beyond the cap gets a clean
//!   `Backpressure` error frame and a close — never a hang, never a
//!   panic.
//! * **Protocol violations fail the connection, not the server.** A
//!   zero-length or oversized frame, a malformed message, a request
//!   before the handshake: the worker answers with a `Protocol`
//!   error where the wire still permits it, closes, and the engine
//!   session is reaped (open transaction aborted, prepared handles
//!   released) by [`grt_ids::Connection::close`].
//! * **Graceful shutdown.** [`ServerHandle::shutdown`] stops the
//!   accept loop, lets in-flight statements finish, reaps every
//!   session, and joins every worker before returning — afterwards
//!   `ids.sessions_opened == ids.sessions_closed` over the server's
//!   lifetime.

use grt_client::proto::{
    encode_error, write_frame, Batch, ErrorCode, FrameError, FrameReader, Request, Response,
    PROTOCOL_VERSION,
};
use grt_ids::{Connection, Database, QueryResult, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Ceiling on concurrently live sessions; connections beyond it
    /// are answered with a `Backpressure` error and closed.
    pub max_sessions: usize,
    /// Rows shipped in a result head; the rest go through `Fetch`.
    pub fetch_rows: usize,
    /// Read-timeout tick workers use to poll the shutdown flag while
    /// blocked waiting for the next request.
    pub poll_interval: Duration,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            max_sessions: 64,
            fetch_rows: 256,
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// Bounded count of live engine sessions — the overload valve. A
/// [`Permit`] is acquired per connection at handshake and released
/// when the worker reaps the session.
pub struct SessionPool {
    live: AtomicUsize,
    cap: usize,
}

impl SessionPool {
    /// A pool admitting at most `cap` live sessions.
    pub fn new(cap: usize) -> SessionPool {
        SessionPool {
            live: AtomicUsize::new(0),
            cap,
        }
    }

    /// Tries to admit one session; `None` means the pool is full and
    /// the caller must shed load.
    pub fn try_acquire(self: &Arc<Self>) -> Option<Permit> {
        let mut n = self.live.load(Ordering::SeqCst);
        loop {
            if n >= self.cap {
                return None;
            }
            match self
                .live
                .compare_exchange(n, n + 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return Some(Permit(Arc::clone(self))),
                Err(cur) => n = cur,
            }
        }
    }

    /// Currently live sessions.
    pub fn live(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// The admission ceiling.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// One admitted session slot; returned to the pool on drop.
pub struct Permit(Arc<SessionPool>);

impl Drop for Permit {
    fn drop(&mut self) {
        self.0.live.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The served engine: the database handle plus the session pool that
/// gates admission — the state every connection worker shares.
#[derive(Clone)]
pub struct Engine {
    /// The engine proper.
    pub db: Database,
    /// Admission control for live sessions.
    pub pool: Arc<SessionPool>,
}

/// The wire server. [`Server::start`] consumes it and returns the
/// running [`ServerHandle`].
pub struct Server {
    engine: Engine,
    opts: ServerOptions,
}

/// A running server: its bound address plus the shutdown switch.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    engine: Engine,
}

impl Server {
    /// A server for `db` with the given options.
    pub fn new(db: Database, opts: ServerOptions) -> Server {
        let pool = Arc::new(SessionPool::new(opts.max_sessions));
        Server {
            engine: Engine { db, pool },
            opts,
        }
    }

    /// Binds the listener and starts accepting. Returns once the
    /// socket is listening; connections are served on background
    /// threads until [`ServerHandle::shutdown`].
    pub fn start(self) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&self.opts.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let engine = self.engine.clone();
            let opts = self.opts.clone();
            let shutdown = Arc::clone(&shutdown);
            let workers = Arc::clone(&workers);
            std::thread::Builder::new()
                .name("grt-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let stream = match stream {
                            Ok(s) => s,
                            // A failed accept (e.g. transient resource
                            // exhaustion) must not kill the server.
                            Err(_) => continue,
                        };
                        let worker = Worker {
                            engine: engine.clone(),
                            opts: opts.clone(),
                            shutdown: Arc::clone(&shutdown),
                        };
                        let handle = std::thread::Builder::new()
                            .name("grt-conn".to_string())
                            .spawn(move || worker.serve(stream));
                        let mut workers = workers.lock();
                        // Reap finished workers so the handle list
                        // stays bounded by live connections.
                        workers.retain(|h| !h.is_finished());
                        if let Ok(h) = handle {
                            workers.push(h);
                        }
                    }
                })?
        };

        Ok(ServerHandle {
            local_addr,
            shutdown,
            accept: Some(accept),
            workers,
            engine: self.engine,
        })
    }
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The served engine (database + pool), e.g. for in-process
    /// metric assertions in tests.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Graceful shutdown: stop accepting, let in-flight statements
    /// finish, reap every session, join every thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection; the
        // flag is already set, so it exits before serving it.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        loop {
            let drained: Vec<_> = std::mem::take(&mut *self.workers.lock());
            if drained.is_empty() {
                break;
            }
            for h in drained {
                let _ = h.join();
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A server-side result cursor: rows already produced by the engine,
/// parked until the client fetches them.
struct Cursor {
    rows: std::vec::IntoIter<Vec<Value>>,
    rendered: std::vec::IntoIter<Vec<String>>,
}

/// Per-connection state machine.
struct Worker {
    engine: Engine,
    opts: ServerOptions,
    shutdown: Arc<AtomicBool>,
}

/// Why a connection ended; drives the final frame (if any).
enum Close {
    /// Client said goodbye or hung up between frames.
    Clean,
    /// The peer broke the protocol; send the error then close.
    Protocol(String),
    /// Transport died; nothing more can be sent.
    Io,
    /// Server is shutting down; tell the peer if a request is
    /// mid-flight, then close.
    ShuttingDown,
}

impl Worker {
    fn serve(self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.opts.poll_interval));
        let writer = match stream.try_clone() {
            Ok(w) => BufWriter::new(w),
            Err(_) => return,
        };
        let mut sess = Session {
            worker: &self,
            conn: None,
            _permit: None,
            cursors: HashMap::new(),
            next_cursor: 1,
            writer,
        };
        let close = sess.run(stream);
        match close {
            Close::Clean | Close::Io => {}
            Close::Protocol(msg) => {
                let _ = sess.send(&Response::Err {
                    code: ErrorCode::Protocol,
                    message: msg,
                });
            }
            Close::ShuttingDown => {
                let _ = sess.send(&Response::Err {
                    code: ErrorCode::ShuttingDown,
                    message: "server shutting down".to_string(),
                });
            }
        }
        // Reap: abort any open transaction, release prepared handles,
        // count the session closed. Cursors die with the map.
        if let Some(conn) = sess.conn.take() {
            conn.close();
        }
    }
}

/// The live state of one served connection.
struct Session<'a> {
    worker: &'a Worker,
    conn: Option<Connection>,
    _permit: Option<Permit>,
    cursors: HashMap<u64, Cursor>,
    next_cursor: u64,
    writer: BufWriter<TcpStream>,
}

impl Session<'_> {
    /// The engine connection; only called after the handshake check.
    /// The shared borrow ends with the statement, so the result
    /// plumbing (cursors) can borrow the session mutably afterwards.
    fn connection(&self) -> &Connection {
        self.conn.as_ref().expect("handshake checked")
    }

    fn send(&mut self, resp: &Response) -> io::Result<()> {
        write_frame(&mut self.writer, &resp.encode())
    }

    fn run(&mut self, mut stream: TcpStream) -> Close {
        let mut frames = FrameReader::new();
        loop {
            if self.worker.shutdown.load(Ordering::SeqCst) {
                return Close::ShuttingDown;
            }
            let frame = match frames.poll(&mut stream) {
                Ok(Some(frame)) => frame,
                Ok(None) => continue,
                Err(FrameError::Eof) => return Close::Clean,
                Err(FrameError::Io(_)) => return Close::Io,
                Err(e @ (FrameError::Empty | FrameError::Oversized(_))) => {
                    return Close::Protocol(e.to_string())
                }
            };
            let req = match Request::decode(&frame) {
                Ok(req) => req,
                Err(msg) => return Close::Protocol(msg),
            };
            match self.handle(req) {
                Ok(Some(resp)) => {
                    if self.send(&resp).is_err() {
                        return Close::Io;
                    }
                    if matches!(resp, Response::Bye) {
                        return Close::Clean;
                    }
                }
                Ok(None) => {} // response already sent
                Err(close) => return close,
            }
        }
    }

    /// Handles one request. `Err` closes the connection; engine
    /// errors are ordinary responses and keep it open.
    fn handle(&mut self, req: Request) -> Result<Option<Response>, Close> {
        // The handshake must come first, and only once.
        if let Request::Hello { version } = req {
            if self.conn.is_some() {
                return Err(Close::Protocol("duplicate handshake".to_string()));
            }
            if version != PROTOCOL_VERSION {
                let _ = self.send(&Response::Err {
                    code: ErrorCode::Protocol,
                    message: format!(
                        "protocol version {version} unsupported (server speaks {PROTOCOL_VERSION})"
                    ),
                });
                return Err(Close::Clean);
            }
            let Some(permit) = self.worker.engine.pool.try_acquire() else {
                let _ = self.send(&Response::Err {
                    code: ErrorCode::Backpressure,
                    message: format!(
                        "session pool full ({} live)",
                        self.worker.engine.pool.capacity()
                    ),
                });
                return Err(Close::Clean);
            };
            let conn = self.worker.engine.db.connect();
            let session = conn.session().id();
            self.conn = Some(conn);
            self._permit = Some(permit);
            return Ok(Some(Response::Welcome {
                version: PROTOCOL_VERSION,
                session,
            }));
        }
        if self.conn.is_none() {
            return Err(Close::Protocol(
                "first request must be the handshake".to_string(),
            ));
        }
        Ok(Some(match req {
            Request::Hello { .. } => unreachable!("handled above"),
            Request::Query { sql } => match self.connection().exec(&sql) {
                Ok(result) => self.result_response(result),
                Err(e) => err_response(&e),
            },
            Request::Prepare { name, sql } => match self.connection().prepare(&name, &sql) {
                Ok(result) => Response::Ok {
                    message: result.message,
                },
                Err(e) => err_response(&e),
            },
            Request::Execute { name, args } => match self.connection().execute_values(&name, &args)
            {
                Ok(result) => self.result_response(result),
                Err(e) => err_response(&e),
            },
            Request::Deallocate { name } => match self.connection().deallocate(&name) {
                Ok(result) => Response::Ok {
                    message: result.message,
                },
                Err(e) => err_response(&e),
            },
            Request::Fetch { cursor, max_rows } => {
                let Some(cur) = self.cursors.get_mut(&cursor) else {
                    return Err(Close::Protocol(format!("unknown cursor {cursor}")));
                };
                // A zero budget still makes progress — fetch must
                // terminate even against a careless client.
                let take = (max_rows as usize).max(1);
                let rows: Vec<_> = cur.rows.by_ref().take(take).collect();
                let rendered: Vec<_> = cur.rendered.by_ref().take(take).collect();
                let done = cur.rows.len() == 0;
                if done {
                    self.cursors.remove(&cursor);
                }
                Response::Rows(Batch {
                    rows,
                    rendered,
                    done,
                })
            }
            Request::Metrics => Response::Metrics {
                entries: grt_client::flatten_metrics(&self.worker.engine.db),
            },
            Request::Trace { max } => {
                let session = self.connection().session().id();
                let mut events: Vec<_> = self
                    .worker
                    .engine
                    .db
                    .trace()
                    .events_for(session)
                    .into_iter()
                    .map(|e| grt_client::proto::WireTraceEvent {
                        class: e.class,
                        level: e.level,
                        session: e.session,
                        span: e.span,
                        message: e.message,
                    })
                    .collect();
                if events.len() > max as usize {
                    events.drain(..events.len() - max as usize);
                }
                Response::Trace { events }
            }
            Request::Goodbye => Response::Bye,
        }))
    }

    /// Turns an engine result into its wire shape, parking overflow
    /// rows in a cursor for follow-up fetches.
    fn result_response(&mut self, result: QueryResult) -> Response {
        let QueryResult {
            columns,
            rows,
            rendered,
            message,
        } = result;
        if columns.is_empty() {
            return Response::Ok { message };
        }
        let total_rows = rows.len() as u64;
        let first = self.worker.opts.fetch_rows;
        let mut rows = rows.into_iter();
        let mut rendered = rendered.into_iter();
        let head_rows: Vec<_> = rows.by_ref().take(first).collect();
        let head_rendered: Vec<_> = rendered.by_ref().take(first).collect();
        let done = rows.len() == 0;
        let cursor = if done {
            0
        } else {
            let id = self.next_cursor;
            self.next_cursor += 1;
            self.cursors.insert(id, Cursor { rows, rendered });
            id
        };
        Response::ResultHead {
            columns,
            message,
            cursor,
            total_rows,
            batch: Batch {
                rows: head_rows,
                rendered: head_rendered,
                done,
            },
        }
    }
}

fn err_response(e: &grt_ids::IdsError) -> Response {
    let (code, message) = encode_error(e);
    Response::Err { code, message }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_admits_to_cap_and_releases() {
        let pool = Arc::new(SessionPool::new(2));
        let a = pool.try_acquire().unwrap();
        let _b = pool.try_acquire().unwrap();
        assert!(pool.try_acquire().is_none());
        assert_eq!(pool.live(), 2);
        drop(a);
        assert_eq!(pool.live(), 1);
        assert!(pool.try_acquire().is_some());
    }
}
