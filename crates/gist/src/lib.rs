//! A **generalized search tree** — the paper's Section 7 future work.
//!
//! "Following the ideas of Hellerstein et al. \[HNP95\] and Aoki \[AOK98\],
//! a generic extendible tree-based access method ... could be integrated
//! into the kernel of the DBMS. Such a generic access method would
//! support the broad class of tree-based access methods by providing a
//! simple, high-level extension interface that isolates the primitive
//! operations required to construct new access methods. It is also
//! possible to implement such a generic access method as a DataBlade
//! and use specially designed operator classes to extend it."
//!
//! This crate does exactly that:
//!
//! * [`GistExtension`] is the high-level extension interface — the four
//!   GiST primitives `consistent`, `union`, `penalty`, `pick_split`
//!   over an opaque, variable-length key;
//! * [`GistTree`] is the generic, disk-resident tree skeleton over an
//!   sbspace large object (one node per page, like every index in this
//!   repository) — insertion, deletion with condensation, cursored
//!   search, and consistency checking, all extension-agnostic;
//! * [`ext`] provides two classic instantiations: an interval tree over
//!   `i64` ranges (B-tree-flavoured) and a 2-D rectangle tree
//!   (R-tree-flavoured);
//! * [`am`] wraps the interval instantiation as a full DataBlade-style
//!   secondary access method (`gist_am`) pluggable into the `ids`
//!   engine, with its own opaque type and strategy function — closing
//!   the loop on the paper's "as a DataBlade" suggestion.

pub mod am;
pub mod ext;
pub mod node;
pub mod tree;

pub use ext::{IntRange, IntRangeExt, RectExt, RectKey};
pub use tree::{GistCursor, GistDeleteOutcome, GistExtension, GistTree, GistTreeOptions};

/// Errors from the GiST layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GistError {
    /// Underlying storage failure.
    Storage(grt_sbspace::SbError),
    /// The large object does not contain a valid tree.
    Corrupt(String),
    /// API misuse or a misbehaving extension.
    Usage(String),
}

impl From<grt_sbspace::SbError> for GistError {
    fn from(e: grt_sbspace::SbError) -> Self {
        GistError::Storage(e)
    }
}

impl std::fmt::Display for GistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GistError::Storage(e) => write!(f, "storage: {e}"),
            GistError::Corrupt(m) => write!(f, "corrupt gist: {m}"),
            GistError::Usage(m) => write!(f, "usage: {m}"),
        }
    }
}

impl std::error::Error for GistError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, GistError>;
