//! The generic tree as a DataBlade: `gist_am` over an `IntRange_t`
//! opaque type — closing the loop on Section 7's "it is also possible
//! to implement such a generic access method as a DataBlade".
//!
//! The access method is the *generic skeleton*; the operator class
//! carries the range strategy function, exactly the extension pattern
//! the paper envisions.

use crate::ext::{IntRange, IntRangeExt};
use crate::tree::{GistTree, GistTreeOptions};
use grt_ids::opaque::OpaqueType;
use grt_ids::vii::QualNode;
use grt_ids::{
    AccessMethod, AmContext, DataType, Database, IdsError, IndexDescriptor, RowId, ScanDescriptor,
    Value,
};
use grt_sbspace::{LoId, LockMode};
use std::sync::Arc;

/// The opaque type name.
pub const RANGE_TYPE: &str = "IntRange_t";

/// Builds the `IntRange_t` opaque type (`"lo..hi"` text form).
pub fn int_range_type() -> OpaqueType {
    OpaqueType::new(
        RANGE_TYPE,
        Arc::new(|text: &str| {
            let (lo, hi) = text
                .split_once("..")
                .ok_or_else(|| IdsError::Type(format!("expected lo..hi, got {text:?}")))?;
            let lo: i64 = lo.trim().parse().map_err(|_| IdsError::Type("lo".into()))?;
            let hi: i64 = hi.trim().parse().map_err(|_| IdsError::Type("hi".into()))?;
            if lo > hi {
                return Err(IdsError::Type(format!("inverted range {lo}..{hi}")));
            }
            let mut out = lo.to_le_bytes().to_vec();
            out.extend_from_slice(&hi.to_le_bytes());
            Ok(out)
        }),
        Arc::new(|bytes: &[u8]| {
            let r = range_from_bytes(bytes)?;
            Ok(format!("{}..{}", r.lo, r.hi))
        }),
    )
}

fn range_from_bytes(bytes: &[u8]) -> Result<IntRange, IdsError> {
    if bytes.len() != 16 {
        return Err(IdsError::Type("IntRange_t needs 16 bytes".into()));
    }
    Ok(IntRange {
        lo: i64::from_le_bytes(bytes[0..8].try_into().unwrap()),
        hi: i64::from_le_bytes(bytes[8..16].try_into().unwrap()),
    })
}

fn range_of_value(v: &Value) -> Result<IntRange, IdsError> {
    match v {
        Value::Opaque { type_name, bytes } if type_name.eq_ignore_ascii_case(RANGE_TYPE) => {
            range_from_bytes(bytes)
        }
        other => Err(IdsError::Type(format!(
            "expected {RANGE_TYPE}, got {other}"
        ))),
    }
}

fn range_to_value(r: &IntRange) -> Value {
    let mut bytes = r.lo.to_le_bytes().to_vec();
    bytes.extend_from_slice(&r.hi.to_le_bytes());
    Value::Opaque {
        type_name: RANGE_TYPE.to_string(),
        bytes,
    }
}

/// The generic access method instantiated for integer ranges.
#[derive(Default)]
pub struct GistRangeAm;

struct TdState {
    lo: LoId,
    mode: LockMode,
    tree: Option<GistTree<IntRangeExt>>,
}

struct ScanState {
    query: IntRange,
    cursor: crate::tree::GistCursor,
}

fn gist_err(e: crate::GistError) -> IdsError {
    IdsError::AccessMethod(e.to_string())
}

impl GistRangeAm {
    fn with_td<R>(
        &self,
        idx: &IndexDescriptor,
        ctx: &AmContext,
        f: impl FnOnce(&mut TdState) -> Result<R, IdsError>,
    ) -> Result<R, IdsError> {
        let mut guard = idx.user_data.lock();
        if guard.is_none() {
            let lo = {
                let frags = ctx.fragments.lock();
                LoId(*frags.get(&idx.index_name).ok_or_else(|| {
                    IdsError::AccessMethod(format!("index {} has no fragment", idx.index_name))
                })?)
            };
            *guard = Some(Box::new(TdState {
                lo,
                mode: LockMode::Shared,
                tree: None,
            }));
        }
        let td = guard
            .as_mut()
            .and_then(|b| b.downcast_mut::<TdState>())
            .ok_or_else(|| IdsError::AccessMethod("foreign index state".into()))?;
        f(td)
    }

    fn ensure_tree(&self, td: &mut TdState, ctx: &AmContext, write: bool) -> Result<(), IdsError> {
        let need = if write {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        };
        if td.tree.is_some() && (td.mode == LockMode::Exclusive || need == LockMode::Shared) {
            return Ok(());
        }
        if let Some(tree) = td.tree.take() {
            tree.into_lo().map_err(gist_err)?.close()?;
        }
        let handle = ctx.space.open_lo(ctx.txn, td.lo, need)?;
        td.tree = Some(GistTree::open(IntRangeExt, handle).map_err(gist_err)?);
        td.mode = need;
        Ok(())
    }

    fn range_of_row(row: &[Value]) -> Result<IntRange, IdsError> {
        range_of_value(
            row.first()
                .ok_or_else(|| IdsError::AccessMethod("no key column".into()))?,
        )
    }
}

impl AccessMethod for GistRangeAm {
    fn am_create(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<(), IdsError> {
        match idx.column_types.first() {
            Some(DataType::Opaque(t)) if t.eq_ignore_ascii_case(RANGE_TYPE) => {}
            other => {
                return Err(IdsError::AccessMethod(format!(
                    "gist_am indexes {RANGE_TYPE} columns, got {other:?}"
                )))
            }
        }
        let lo = ctx.space.create_lo(ctx.txn)?;
        ctx.fragments.lock().insert(idx.index_name.clone(), lo.0);
        let handle = ctx.space.open_lo(ctx.txn, lo, LockMode::Exclusive)?;
        let tree =
            GistTree::create(IntRangeExt, handle, GistTreeOptions::default()).map_err(gist_err)?;
        *idx.user_data.lock() = Some(Box::new(TdState {
            lo,
            mode: LockMode::Exclusive,
            tree: Some(tree),
        }));
        Ok(())
    }

    fn am_drop(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<(), IdsError> {
        if let Some(boxed) = idx.user_data.lock().take() {
            if let Ok(td) = boxed.downcast::<TdState>() {
                if let Some(tree) = td.tree {
                    tree.into_lo().map_err(gist_err)?.close()?;
                }
            }
        }
        if let Some(lo) = ctx.fragments.lock().remove(&idx.index_name) {
            ctx.space.drop_lo(ctx.txn, LoId(lo))?;
        }
        Ok(())
    }

    fn am_close(&self, idx: &IndexDescriptor, _ctx: &AmContext) -> Result<(), IdsError> {
        if let Some(boxed) = idx.user_data.lock().take() {
            if let Ok(td) = boxed.downcast::<TdState>() {
                if let Some(tree) = td.tree {
                    tree.into_lo().map_err(gist_err)?.close()?;
                }
            }
        }
        Ok(())
    }

    fn am_beginscan(
        &self,
        idx: &IndexDescriptor,
        scan: &mut ScanDescriptor,
        ctx: &AmContext,
    ) -> Result<(), IdsError> {
        let query = match &scan.qual.root {
            Some(QualNode::Simple(q)) if q.func.eq_ignore_ascii_case("RangeOverlaps") => {
                range_of_value(q.constant.as_ref().ok_or_else(|| {
                    IdsError::AccessMethod("RangeOverlaps needs a constant".into())
                })?)?
            }
            None => IntRange::new(i64::MIN / 2, i64::MAX / 2),
            other => {
                return Err(IdsError::AccessMethod(format!(
                    "unsupported qualification {other:?}"
                )))
            }
        };
        self.with_td(idx, ctx, |td| {
            self.ensure_tree(td, ctx, false)?;
            scan.user_data = Some(Box::new(ScanState {
                query,
                cursor: td.tree.as_ref().expect("ensured").cursor(),
            }));
            Ok(())
        })
    }

    fn am_getnext(
        &self,
        idx: &IndexDescriptor,
        scan: &mut ScanDescriptor,
        ctx: &AmContext,
    ) -> Result<Option<(RowId, Vec<Value>)>, IdsError> {
        self.with_td(idx, ctx, |td| {
            self.ensure_tree(td, ctx, false)?;
            let tree = td.tree.as_ref().expect("ensured");
            let state = scan
                .user_data
                .as_mut()
                .and_then(|b| b.downcast_mut::<ScanState>())
                .ok_or_else(|| IdsError::AccessMethod("getnext without beginscan".into()))?;
            match tree
                .cursor_next(&mut state.cursor, &state.query)
                .map_err(gist_err)?
            {
                Some((key, rowid)) => Ok(Some((RowId(rowid), vec![range_to_value(&key)]))),
                None => Ok(None),
            }
        })
    }

    fn am_insert(
        &self,
        idx: &IndexDescriptor,
        row: &[Value],
        rowid: RowId,
        ctx: &AmContext,
    ) -> Result<(), IdsError> {
        let key = Self::range_of_row(row)?;
        self.with_td(idx, ctx, |td| {
            self.ensure_tree(td, ctx, true)?;
            td.tree
                .as_mut()
                .expect("ensured")
                .insert(&key, rowid.0)
                .map_err(gist_err)
        })
    }

    fn am_delete(
        &self,
        idx: &IndexDescriptor,
        row: &[Value],
        rowid: RowId,
        ctx: &AmContext,
    ) -> Result<(), IdsError> {
        let key = Self::range_of_row(row)?;
        self.with_td(idx, ctx, |td| {
            self.ensure_tree(td, ctx, true)?;
            let out = td
                .tree
                .as_mut()
                .expect("ensured")
                .delete(&key, rowid.0)
                .map_err(gist_err)?;
            if !out.found {
                return Err(IdsError::AccessMethod(format!("entry for {rowid} missing")));
            }
            Ok(())
        })
    }

    fn am_scancost(
        &self,
        idx: &IndexDescriptor,
        _qual: &grt_ids::QualDescriptor,
        ctx: &AmContext,
    ) -> Result<f64, IdsError> {
        self.with_td(idx, ctx, |td| {
            self.ensure_tree(td, ctx, false)?;
            let tree = td.tree.as_ref().expect("ensured");
            Ok(tree.height() as f64 + tree.pages() as f64 * 0.25)
        })
    }

    fn am_check(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<(), IdsError> {
        self.with_td(idx, ctx, |td| {
            self.ensure_tree(td, ctx, false)?;
            td.tree.as_ref().expect("ensured").check().map_err(gist_err)
        })
    }
}

/// Installs the GiST range DataBlade: the opaque type, the strategy
/// function, the access method, and its operator class.
pub fn install_gist_blade(db: &Database) -> Result<(), IdsError> {
    db.install_opaque_type(int_range_type());
    db.install_library("gist.bld", Arc::new(GistRangeAm));
    for sym in ["gst_create", "gst_drop", "gst_getnext"] {
        db.install_symbol(
            &format!("usr/gist.bld({sym})"),
            Arc::new(|_args: &[Value], _ctx: &AmContext| {
                Err(IdsError::Routine("purpose function".into()))
            }),
        );
    }
    db.install_symbol(
        "usr/gist.bld(range_overlaps)",
        Arc::new(|args: &[Value], _ctx: &AmContext| {
            let [a, b] = args else {
                return Err(IdsError::Type("RangeOverlaps(range, range)".into()));
            };
            Ok(Value::Bool(
                range_of_value(a)?.overlaps(&range_of_value(b)?),
            ))
        }),
    );
    let conn = db.connect();
    conn.exec_script(
        "CREATE FUNCTION gst_create(pointer) RETURNING int \
           EXTERNAL NAME 'usr/gist.bld(gst_create)' LANGUAGE c;\
         CREATE FUNCTION gst_drop(pointer) RETURNING int \
           EXTERNAL NAME 'usr/gist.bld(gst_drop)' LANGUAGE c;\
         CREATE FUNCTION gst_getnext(pointer) RETURNING int \
           EXTERNAL NAME 'usr/gist.bld(gst_getnext)' LANGUAGE c;\
         CREATE FUNCTION RangeOverlaps(IntRange_t, IntRange_t) RETURNING boolean \
           EXTERNAL NAME 'usr/gist.bld(range_overlaps)' LANGUAGE c;\
         CREATE SECONDARY ACCESS_METHOD gist_am ( \
           am_create = gst_create, am_drop = gst_drop, am_getnext = gst_getnext, \
           am_sptype = 'S' );\
         CREATE OPCLASS gist_range_ops FOR gist_am STRATEGIES(RangeOverlaps);",
    )?;
    Ok(())
}
