//! Variable-length-entry node pages for the generic tree.
//!
//! Unlike the fixed-layout GR-tree and R\*-tree nodes, a GiST key is an
//! opaque byte string chosen by the extension, so entries are
//! length-prefixed: `[key_len u16][key bytes][payload u64]`.

use crate::{GistError, Result};
use grt_sbspace::page::{page_from_slice, PageBuf, PAGE_SIZE};

const MAGIC: &[u8; 4] = b"GIST";
const HEADER_LEN: usize = 8;

/// One raw entry: an opaque key plus a payload (rowid in leaves, child
/// page in internal nodes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawEntry {
    /// Extension-defined key bytes.
    pub key: Vec<u8>,
    /// Rowid or child page.
    pub payload: u64,
}

impl RawEntry {
    fn encoded_len(&self) -> usize {
        2 + self.key.len() + 8
    }
}

/// An in-memory node image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawNode {
    /// 0 for leaves.
    pub level: u16,
    /// The entries.
    pub entries: Vec<RawEntry>,
}

impl RawNode {
    /// An empty node at `level`.
    pub fn new(level: u16) -> RawNode {
        RawNode {
            level,
            entries: Vec::new(),
        }
    }

    /// True for leaves.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Bytes the node occupies when encoded.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN
            + self
                .entries
                .iter()
                .map(RawEntry::encoded_len)
                .sum::<usize>()
    }

    /// Whether adding `extra` would overflow the page.
    pub fn overflows_with(&self, extra: &RawEntry) -> bool {
        self.encoded_len() + extra.encoded_len() > PAGE_SIZE
    }

    /// Serialises into a page image.
    pub fn encode(&self) -> Result<PageBuf> {
        if self.encoded_len() > PAGE_SIZE {
            return Err(GistError::Usage(format!(
                "node of {} bytes exceeds the page",
                self.encoded_len()
            )));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0..4].copy_from_slice(MAGIC);
        buf[4..6].copy_from_slice(&self.level.to_le_bytes());
        buf[6..8].copy_from_slice(&(self.entries.len() as u16).to_le_bytes());
        let mut off = HEADER_LEN;
        for e in &self.entries {
            buf[off..off + 2].copy_from_slice(&(e.key.len() as u16).to_le_bytes());
            off += 2;
            buf[off..off + e.key.len()].copy_from_slice(&e.key);
            off += e.key.len();
            buf[off..off + 8].copy_from_slice(&e.payload.to_le_bytes());
            off += 8;
        }
        Ok(page_from_slice(&buf))
    }

    /// Parses a page image.
    pub fn decode(buf: &[u8; PAGE_SIZE]) -> Result<RawNode> {
        if &buf[0..4] != MAGIC {
            return Err(GistError::Corrupt("bad gist node magic".into()));
        }
        let level = u16::from_le_bytes(buf[4..6].try_into().unwrap());
        let count = u16::from_le_bytes(buf[6..8].try_into().unwrap()) as usize;
        let mut entries = Vec::with_capacity(count);
        let mut off = HEADER_LEN;
        for _ in 0..count {
            if off + 2 > PAGE_SIZE {
                return Err(GistError::Corrupt("entry table overruns page".into()));
            }
            let klen = u16::from_le_bytes(buf[off..off + 2].try_into().unwrap()) as usize;
            off += 2;
            if off + klen + 8 > PAGE_SIZE {
                return Err(GistError::Corrupt("entry overruns page".into()));
            }
            let key = buf[off..off + klen].to_vec();
            off += klen;
            let payload = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
            off += 8;
            entries.push(RawEntry { key, payload });
        }
        Ok(RawNode { level, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_variable_length() {
        let mut n = RawNode::new(2);
        for i in 0..40u64 {
            n.entries.push(RawEntry {
                key: vec![i as u8; (i % 17) as usize],
                payload: i * 7,
            });
        }
        let decoded = RawNode::decode(&n.encode().unwrap()).unwrap();
        assert_eq!(decoded, n);
    }

    #[test]
    fn overflow_detected() {
        let mut n = RawNode::new(0);
        let big = RawEntry {
            key: vec![1u8; 1000],
            payload: 0,
        };
        while !n.overflows_with(&big) {
            n.entries.push(big.clone());
        }
        assert!(n.encode().is_ok());
        n.entries.push(big);
        assert!(n.encode().is_err());
    }

    #[test]
    fn garbage_rejected() {
        assert!(RawNode::decode(&grt_sbspace::page::zeroed_page()).is_err());
    }
}
