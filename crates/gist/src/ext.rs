//! Two classic extensions: 1-D integer ranges (B-tree flavour) and 2-D
//! rectangles (R-tree flavour) — HNP95's own worked examples.

use crate::tree::GistExtension;
use crate::{GistError, Result};

/// A closed `i64` interval key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntRange {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl IntRange {
    /// A range (normalising inverted input).
    pub fn new(a: i64, b: i64) -> IntRange {
        IntRange {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// A single point.
    pub fn point(v: i64) -> IntRange {
        IntRange { lo: v, hi: v }
    }

    /// Interval overlap.
    pub fn overlaps(&self, other: &IntRange) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Interval containment.
    pub fn contains(&self, other: &IntRange) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }
}

/// The interval-tree extension.
#[derive(Debug, Clone, Copy, Default)]
pub struct IntRangeExt;

impl GistExtension for IntRangeExt {
    type Key = IntRange;
    type Query = IntRange;

    fn encode_key(&self, key: &IntRange, out: &mut Vec<u8>) {
        out.extend_from_slice(&key.lo.to_le_bytes());
        out.extend_from_slice(&key.hi.to_le_bytes());
    }

    fn decode_key(&self, bytes: &[u8]) -> Result<IntRange> {
        if bytes.len() != 16 {
            return Err(GistError::Corrupt("IntRange key must be 16 bytes".into()));
        }
        Ok(IntRange {
            lo: i64::from_le_bytes(bytes[0..8].try_into().unwrap()),
            hi: i64::from_le_bytes(bytes[8..16].try_into().unwrap()),
        })
    }

    fn consistent(&self, key: &IntRange, query: &IntRange, _is_leaf: bool) -> bool {
        key.overlaps(query)
    }

    fn union(&self, keys: &[IntRange]) -> IntRange {
        IntRange {
            lo: keys.iter().map(|k| k.lo).min().expect("nonempty"),
            hi: keys.iter().map(|k| k.hi).max().expect("nonempty"),
        }
    }

    fn penalty(&self, existing: &IntRange, new: &IntRange) -> i128 {
        let u = IntRange {
            lo: existing.lo.min(new.lo),
            hi: existing.hi.max(new.hi),
        };
        (u.hi as i128 - u.lo as i128) - (existing.hi as i128 - existing.lo as i128)
    }

    fn pick_split(&self, keys: &[IntRange]) -> (Vec<usize>, Vec<usize>) {
        // Sort by lower bound, split in the middle — the B-tree-ish
        // ordered split of HNP95's range example.
        let mut idx: Vec<usize> = (0..keys.len()).collect();
        idx.sort_by_key(|&i| (keys[i].lo, keys[i].hi));
        let mid = idx.len() / 2;
        (idx[..mid].to_vec(), idx[mid..].to_vec())
    }
}

/// A 2-D integer rectangle key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RectKey {
    pub x1: i32,
    pub x2: i32,
    pub y1: i32,
    pub y2: i32,
}

impl RectKey {
    /// A rectangle (normalising inverted edges).
    pub fn new(x1: i32, x2: i32, y1: i32, y2: i32) -> RectKey {
        RectKey {
            x1: x1.min(x2),
            x2: x1.max(x2),
            y1: y1.min(y2),
            y2: y1.max(y2),
        }
    }

    fn area(&self) -> i128 {
        (self.x2 as i128 - self.x1 as i128 + 1) * (self.y2 as i128 - self.y1 as i128 + 1)
    }

    /// Rectangle overlap.
    pub fn overlaps(&self, o: &RectKey) -> bool {
        self.x1 <= o.x2 && o.x1 <= self.x2 && self.y1 <= o.y2 && o.y1 <= self.y2
    }
}

/// The rectangle-tree extension (a compact R-tree via GiST).
#[derive(Debug, Clone, Copy, Default)]
pub struct RectExt;

impl GistExtension for RectExt {
    type Key = RectKey;
    type Query = RectKey;

    fn encode_key(&self, key: &RectKey, out: &mut Vec<u8>) {
        for v in [key.x1, key.x2, key.y1, key.y2] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode_key(&self, bytes: &[u8]) -> Result<RectKey> {
        if bytes.len() != 16 {
            return Err(GistError::Corrupt("RectKey must be 16 bytes".into()));
        }
        let w = |i: usize| i32::from_le_bytes(bytes[i..i + 4].try_into().unwrap());
        Ok(RectKey {
            x1: w(0),
            x2: w(4),
            y1: w(8),
            y2: w(12),
        })
    }

    fn consistent(&self, key: &RectKey, query: &RectKey, _is_leaf: bool) -> bool {
        key.overlaps(query)
    }

    fn union(&self, keys: &[RectKey]) -> RectKey {
        RectKey {
            x1: keys.iter().map(|k| k.x1).min().expect("nonempty"),
            x2: keys.iter().map(|k| k.x2).max().expect("nonempty"),
            y1: keys.iter().map(|k| k.y1).min().expect("nonempty"),
            y2: keys.iter().map(|k| k.y2).max().expect("nonempty"),
        }
    }

    fn penalty(&self, existing: &RectKey, new: &RectKey) -> i128 {
        let u = self.union(&[*existing, *new]);
        u.area() - existing.area()
    }

    fn pick_split(&self, keys: &[RectKey]) -> (Vec<usize>, Vec<usize>) {
        // Guttman's quadratic split, simplified: seeds = the pair whose
        // union wastes the most area; the rest go to the cheaper side.
        let n = keys.len();
        let (mut s1, mut s2) = (0usize, 1usize.min(n - 1));
        let mut worst = i128::MIN;
        for i in 0..n {
            for j in i + 1..n {
                let waste =
                    self.union(&[keys[i], keys[j]]).area() - keys[i].area() - keys[j].area();
                if waste > worst {
                    worst = waste;
                    s1 = i;
                    s2 = j;
                }
            }
        }
        let (mut left, mut right) = (vec![s1], vec![s2]);
        let (mut lu, mut ru) = (keys[s1], keys[s2]);
        for (i, key) in keys.iter().enumerate() {
            if i == s1 || i == s2 {
                continue;
            }
            let dl = self.penalty(&lu, key);
            let dr = self.penalty(&ru, key);
            if dl <= dr {
                left.push(i);
                lu = self.union(&[lu, *key]);
            } else {
                right.push(i);
                ru = self.union(&[ru, *key]);
            }
        }
        (left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_primitives() {
        let ext = IntRangeExt;
        let a = IntRange::new(0, 10);
        let b = IntRange::new(5, 20);
        assert!(ext.consistent(&a, &b, true));
        assert_eq!(ext.union(&[a, b]), IntRange::new(0, 20));
        assert_eq!(ext.penalty(&a, &IntRange::new(2, 8)), 0);
        assert_eq!(ext.penalty(&a, &b), 10);
        let mut bytes = Vec::new();
        ext.encode_key(&a, &mut bytes);
        assert_eq!(ext.decode_key(&bytes).unwrap(), a);
        assert!(ext.decode_key(&bytes[..5]).is_err());
    }

    #[test]
    fn int_range_split_is_ordered() {
        let ext = IntRangeExt;
        let keys: Vec<IntRange> = (0..10).map(|i| IntRange::new(i * 10, i * 10 + 5)).collect();
        let (l, r) = ext.pick_split(&keys);
        assert_eq!(l.len() + r.len(), 10);
        let lmax = l.iter().map(|&i| keys[i].lo).max().unwrap();
        let rmin = r.iter().map(|&i| keys[i].lo).min().unwrap();
        assert!(lmax <= rmin, "ordered split");
    }

    #[test]
    fn rect_primitives_and_split() {
        let ext = RectExt;
        let a = RectKey::new(0, 10, 0, 10);
        let b = RectKey::new(100, 110, 100, 110);
        assert!(!ext.consistent(&a, &b, false));
        assert_eq!(ext.penalty(&a, &RectKey::new(2, 3, 2, 3)), 0);
        let keys = vec![
            RectKey::new(0, 1, 0, 1),
            RectKey::new(2, 3, 1, 2),
            RectKey::new(100, 101, 100, 101),
            RectKey::new(102, 104, 99, 103),
        ];
        let (l, r) = ext.pick_split(&keys);
        assert_eq!(l.len() + r.len(), 4);
        // The two clusters separate.
        let cluster = |idx: &[usize]| {
            idx.iter().all(|&i| keys[i].x1 < 50) || idx.iter().all(|&i| keys[i].x1 >= 50)
        };
        assert!(cluster(&l) && cluster(&r), "{l:?} {r:?}");
    }
}
