//! The generic tree skeleton.
//!
//! Everything structural — node I/O, descent, splitting, parent-key
//! maintenance, deletion with condensation, cursors, invariant checks —
//! lives here and never interprets a key. The four extension primitives
//! of Hellerstein et al. supply all semantics.

use crate::node::{RawEntry, RawNode};
use crate::{GistError, Result};
use grt_metrics::TreeMetrics;
use grt_sbspace::page::{get_u32, get_u64, page_from_slice, put_u32, put_u64, PageBuf, PAGE_SIZE};
use grt_sbspace::LoHandle;

/// The extension interface: the primitive operations a tree-based
/// access method must supply (HNP95's `Consistent`, `Union`, `Penalty`,
/// `PickSplit` — `Compress`/`Decompress` are folded into the key codec).
pub trait GistExtension: Send + Sync {
    /// The decoded key type.
    type Key: Clone;
    /// The query type `consistent` tests against.
    type Query;

    /// Serialises a key.
    fn encode_key(&self, key: &Self::Key, out: &mut Vec<u8>);
    /// Deserialises a key.
    fn decode_key(&self, bytes: &[u8]) -> Result<Self::Key>;
    /// Can an entry under `key` match `query`? (Exact at leaves, may
    /// only err towards `true` internally.)
    fn consistent(&self, key: &Self::Key, query: &Self::Query, is_leaf: bool) -> bool;
    /// The smallest key covering all of `keys`.
    fn union(&self, keys: &[Self::Key]) -> Self::Key;
    /// Cost of inserting `new` under `existing` (smaller = better).
    fn penalty(&self, existing: &Self::Key, new: &Self::Key) -> i128;
    /// Partitions `keys` (length >= 2) into two non-empty groups,
    /// returned as index sets.
    fn pick_split(&self, keys: &[Self::Key]) -> (Vec<usize>, Vec<usize>);
    /// Key equality (for delete lookups); defaults to encoded equality.
    fn key_eq(&self, a: &Self::Key, b: &Self::Key) -> bool {
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        self.encode_key(a, &mut ba);
        self.encode_key(b, &mut bb);
        ba == bb
    }
}

/// Construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct GistTreeOptions {
    /// Minimum entries per non-root node before condensation.
    pub min_fill: usize,
}

impl Default for GistTreeOptions {
    fn default() -> Self {
        GistTreeOptions { min_fill: 2 }
    }
}

/// Outcome of a deletion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GistDeleteOutcome {
    /// Whether the entry existed.
    pub found: bool,
    /// Whether condensation restructured the tree.
    pub condensed: bool,
}

const META_MAGIC: &[u8; 4] = b"GSTH";
const NO_PAGE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Meta {
    root: u32,
    height: u32,
    count: u64,
    min_fill: u32,
    free_head: u32,
}

impl Meta {
    fn encode(&self) -> PageBuf {
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0..4].copy_from_slice(META_MAGIC);
        put_u32(&mut buf, 4, self.root);
        put_u32(&mut buf, 8, self.height);
        put_u64(&mut buf, 12, self.count);
        put_u32(&mut buf, 20, self.min_fill);
        put_u32(&mut buf, 24, self.free_head);
        page_from_slice(&buf)
    }

    fn decode(buf: &[u8; PAGE_SIZE]) -> Result<Meta> {
        if &buf[0..4] != META_MAGIC {
            return Err(GistError::Corrupt("bad gist header magic".into()));
        }
        Ok(Meta {
            root: get_u32(buf.as_slice(), 4),
            height: get_u32(buf.as_slice(), 8),
            count: get_u64(buf.as_slice(), 12),
            min_fill: get_u32(buf.as_slice(), 20),
            free_head: get_u32(buf.as_slice(), 24),
        })
    }
}

/// The generic disk-resident tree.
pub struct GistTree<E: GistExtension> {
    ext: E,
    lo: LoHandle,
    meta: Meta,
    /// Operation counters; detached by default, swapped for
    /// registry-backed cells via [`GistTree::set_metrics`].
    metrics: TreeMetrics,
}

enum ChildFate {
    Alive,
    Dissolved(Vec<RawEntry>, u16),
}

impl<E: GistExtension> GistTree<E> {
    /// Initialises a fresh tree inside an empty large object.
    pub fn create(ext: E, mut lo: LoHandle, opts: GistTreeOptions) -> Result<GistTree<E>> {
        if lo.page_count() != 0 {
            return Err(GistError::Usage("large object not empty".into()));
        }
        let meta = Meta {
            root: 1,
            height: 1,
            count: 0,
            min_fill: opts.min_fill.max(1) as u32,
            free_head: NO_PAGE,
        };
        lo.append_page(&meta.encode())?;
        lo.append_page(&*RawNode::new(0).encode()?)?;
        Ok(GistTree {
            ext,
            lo,
            meta,
            metrics: TreeMetrics::default(),
        })
    }

    /// Opens an existing tree with the matching extension.
    pub fn open(ext: E, lo: LoHandle) -> Result<GistTree<E>> {
        let meta = Meta::decode(&*lo.read_page_pinned(0)?)?;
        Ok(GistTree {
            ext,
            lo,
            meta,
            metrics: TreeMetrics::default(),
        })
    }

    /// Replaces the operation counters, typically with
    /// [`TreeMetrics::registered`] cells feeding an engine-wide registry.
    pub fn set_metrics(&mut self, metrics: TreeMetrics) {
        self.metrics = metrics;
    }

    /// The operation counters this tree bumps.
    pub fn metrics(&self) -> &TreeMetrics {
        &self.metrics
    }

    /// Releases the large object (flushing the header when writable).
    pub fn into_lo(mut self) -> Result<LoHandle> {
        if self.lo.is_writable() {
            self.write_meta()?;
        }
        Ok(self.lo)
    }

    /// The extension in use.
    pub fn extension(&self) -> &E {
        &self.ext
    }

    /// Number of indexed entries.
    pub fn len(&self) -> u64 {
        self.meta.count
    }

    /// True when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.meta.count == 0
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.meta.height
    }

    /// Total pages owned, header included.
    pub fn pages(&self) -> u32 {
        self.lo.page_count()
    }

    fn write_meta(&mut self) -> Result<()> {
        self.lo.write_page(0, &self.meta.encode())?;
        Ok(())
    }

    fn read_node(&self, page: u32) -> Result<RawNode> {
        RawNode::decode(&*self.lo.read_page_pinned(page)?)
    }

    fn write_node(&mut self, page: u32, node: &RawNode) -> Result<()> {
        self.lo.write_page(page, &*node.encode()?)?;
        Ok(())
    }

    fn alloc_node(&mut self, node: &RawNode) -> Result<u32> {
        if self.meta.free_head != NO_PAGE {
            let page = self.meta.free_head;
            let buf = self.lo.read_page_pinned(page)?;
            if &buf[0..4] != b"GSTF" {
                return Err(GistError::Corrupt("bad free-chain page".into()));
            }
            self.meta.free_head = u32::from_le_bytes(buf[4..8].try_into().unwrap());
            self.write_node(page, node)?;
            return Ok(page);
        }
        Ok(self.lo.append_page(&*node.encode()?)?)
    }

    fn free_node(&mut self, page: u32) -> Result<()> {
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0..4].copy_from_slice(b"GSTF");
        buf[4..8].copy_from_slice(&self.meta.free_head.to_le_bytes());
        self.lo.write_page(page, &page_from_slice(&buf))?;
        self.meta.free_head = page;
        Ok(())
    }

    fn entry_of(&self, key: &E::Key, payload: u64) -> RawEntry {
        let mut bytes = Vec::new();
        self.ext.encode_key(key, &mut bytes);
        RawEntry {
            key: bytes,
            payload,
        }
    }

    fn keys_of(&self, node: &RawNode) -> Result<Vec<E::Key>> {
        node.entries
            .iter()
            .map(|e| self.ext.decode_key(&e.key))
            .collect()
    }

    fn node_union(&self, node: &RawNode) -> Result<E::Key> {
        let keys = self.keys_of(node)?;
        if keys.is_empty() {
            return Err(GistError::Corrupt("union of an empty node".into()));
        }
        Ok(self.ext.union(&keys))
    }

    /// Inserts `key` with payload `rowid`.
    pub fn insert(&mut self, key: &E::Key, rowid: u64) -> Result<()> {
        let entry = self.entry_of(key, rowid);
        self.insert_toplevel(entry, 0)?;
        self.meta.count += 1;
        self.write_meta()
    }

    fn insert_toplevel(&mut self, entry: RawEntry, level: u16) -> Result<()> {
        let root = self.meta.root;
        if let Some(sibling) = self.insert_rec(root, entry, level)? {
            let old_root = self.read_node(root)?;
            let left = self.entry_of(&self.node_union(&old_root)?, root as u64);
            let mut new_root = RawNode::new(old_root.level + 1);
            new_root.entries.push(left);
            new_root.entries.push(sibling);
            let page = self.alloc_node(&new_root)?;
            self.meta.root = page;
            self.meta.height += 1;
        }
        Ok(())
    }

    fn insert_rec(
        &mut self,
        page: u32,
        entry: RawEntry,
        target_level: u16,
    ) -> Result<Option<RawEntry>> {
        let mut node = self.read_node(page)?;
        if node.level == target_level {
            node.entries.push(entry);
        } else {
            // ChooseSubtree by minimum penalty.
            let keys = self.keys_of(&node)?;
            let new_key = self.ext.decode_key(&entry.key)?;
            let idx = (0..keys.len())
                .min_by_key(|&i| self.ext.penalty(&keys[i], &new_key))
                .ok_or_else(|| GistError::Corrupt("descending into an empty node".into()))?;
            let child = node.entries[idx].payload as u32;
            let split = self.insert_rec(child, entry, target_level)?;
            // Refresh the chosen child's union key.
            let child_node = self.read_node(child)?;
            node.entries[idx] = self.entry_of(&self.node_union(&child_node)?, child as u64);
            if let Some(sibling) = split {
                node.entries.push(sibling);
            }
        }
        if node.encoded_len() > PAGE_SIZE || node.entries.len() > u16::MAX as usize {
            let (a, b) = self.split(&node)?;
            self.write_node(page, &a)?;
            let b_key = self.node_union(&b)?;
            let b_page = self.alloc_node(&b)?;
            return Ok(Some(self.entry_of(&b_key, b_page as u64)));
        }
        self.write_node(page, &node)?;
        Ok(None)
    }

    fn split(&self, node: &RawNode) -> Result<(RawNode, RawNode)> {
        self.metrics.splits.inc();
        let keys = self.keys_of(node)?;
        let (left_idx, right_idx) = self.ext.pick_split(&keys);
        if left_idx.is_empty() || right_idx.is_empty() {
            return Err(GistError::Usage(
                "pick_split returned an empty group".into(),
            ));
        }
        if left_idx.len() + right_idx.len() != keys.len() {
            return Err(GistError::Usage(
                "pick_split lost or duplicated entries".into(),
            ));
        }
        let build = |idx: &[usize]| RawNode {
            level: node.level,
            entries: idx.iter().map(|&i| node.entries[i].clone()).collect(),
        };
        Ok((build(&left_idx), build(&right_idx)))
    }

    /// Deletes the entry `(key, rowid)`.
    pub fn delete(&mut self, key: &E::Key, rowid: u64) -> Result<GistDeleteOutcome> {
        let root = self.meta.root;
        let mut orphans: Vec<(Vec<RawEntry>, u16)> = Vec::new();
        let removed = self.delete_rec(root, key, rowid, &mut orphans)?;
        if removed.is_none() {
            return Ok(GistDeleteOutcome {
                found: false,
                condensed: false,
            });
        }
        let condensed = !orphans.is_empty();
        if condensed {
            self.metrics.condenses.inc();
        }
        for (entries, level) in orphans {
            for entry in entries {
                self.insert_toplevel(entry, level)?;
            }
        }
        loop {
            let root_node = self.read_node(self.meta.root)?;
            if root_node.is_leaf() || root_node.entries.len() != 1 {
                break;
            }
            let old = self.meta.root;
            self.meta.root = root_node.entries[0].payload as u32;
            self.meta.height -= 1;
            self.free_node(old)?;
        }
        self.meta.count -= 1;
        self.write_meta()?;
        Ok(GistDeleteOutcome {
            found: true,
            condensed,
        })
    }

    fn delete_rec(
        &mut self,
        page: u32,
        key: &E::Key,
        rowid: u64,
        orphans: &mut Vec<(Vec<RawEntry>, u16)>,
    ) -> Result<Option<ChildFate>> {
        let mut node = self.read_node(page)?;
        let is_root = page == self.meta.root;
        let min_fill = self.meta.min_fill as usize;
        if node.is_leaf() {
            let Some(idx) = node.entries.iter().position(|e| {
                e.payload == rowid
                    && self
                        .ext
                        .decode_key(&e.key)
                        .map(|k| self.ext.key_eq(&k, key))
                        .unwrap_or(false)
            }) else {
                return Ok(None);
            };
            node.entries.remove(idx);
            if !is_root && node.entries.len() < min_fill {
                return Ok(Some(ChildFate::Dissolved(
                    std::mem::take(&mut node.entries),
                    0,
                )));
            }
            self.write_node(page, &node)?;
            return Ok(Some(ChildFate::Alive));
        }
        for idx in 0..node.entries.len() {
            // Descend only where the entry's subtree could hold the key:
            // a zero-penalty union means the subtree key covers it.
            let sub_key = self.ext.decode_key(&node.entries[idx].key)?;
            if self.ext.penalty(&sub_key, key) != 0 {
                continue;
            }
            let child = node.entries[idx].payload as u32;
            match self.delete_rec(child, key, rowid, orphans)? {
                None => continue,
                Some(ChildFate::Alive) => {
                    let child_node = self.read_node(child)?;
                    node.entries[idx] = self.entry_of(&self.node_union(&child_node)?, child as u64);
                }
                Some(ChildFate::Dissolved(entries, level)) => {
                    orphans.push((entries, level));
                    self.free_node(child)?;
                    node.entries.remove(idx);
                }
            }
            if !is_root && node.entries.len() < min_fill {
                let level = node.level;
                return Ok(Some(ChildFate::Dissolved(
                    std::mem::take(&mut node.entries),
                    level,
                )));
            }
            self.write_node(page, &node)?;
            return Ok(Some(ChildFate::Alive));
        }
        Ok(None)
    }

    /// Collects all `(key, rowid)` pairs consistent with `query`.
    pub fn search(&self, query: &E::Query) -> Result<Vec<(E::Key, u64)>> {
        let mut out = Vec::new();
        let mut cursor = self.cursor();
        while let Some(hit) = self.cursor_next(&mut cursor, query)? {
            out.push(hit);
        }
        Ok(out)
    }

    /// Opens a scan cursor.
    pub fn cursor(&self) -> GistCursor {
        self.metrics.searches.inc();
        GistCursor {
            stack: Vec::new(),
            root: self.meta.root,
            primed: false,
        }
    }

    /// Advances a cursor to the next entry consistent with `query`.
    pub fn cursor_next(
        &self,
        cursor: &mut GistCursor,
        query: &E::Query,
    ) -> Result<Option<(E::Key, u64)>> {
        if !cursor.primed {
            cursor.primed = true;
            let node = self.read_node(cursor.root)?;
            self.metrics.nodes_visited.inc();
            cursor.stack.push((node, 0));
        }
        loop {
            let Some((node, next)) = cursor.stack.last_mut() else {
                return Ok(None);
            };
            if *next >= node.entries.len() {
                cursor.stack.pop();
                continue;
            }
            let entry = node.entries[*next].clone();
            let level = node.level;
            *next += 1;
            let key = self.ext.decode_key(&entry.key)?;
            if !self.ext.consistent(&key, query, level == 0) {
                continue;
            }
            if level == 0 {
                return Ok(Some((key, entry.payload)));
            }
            let child = self.read_node(entry.payload as u32)?;
            self.metrics.nodes_visited.inc();
            cursor.stack.push((child, 0));
        }
    }

    /// Verifies structural invariants: parent keys cover child unions
    /// (zero penalty), levels decrease, counts match.
    pub fn check(&self) -> Result<()> {
        let mut leaves = 0u64;
        self.check_rec(self.meta.root, None, true, &mut leaves)?;
        if leaves != self.meta.count {
            return Err(GistError::Corrupt(format!(
                "count mismatch: header {} vs leaves {leaves}",
                self.meta.count
            )));
        }
        Ok(())
    }

    fn check_rec(
        &self,
        page: u32,
        expect_level: Option<u16>,
        is_root: bool,
        leaves: &mut u64,
    ) -> Result<Option<E::Key>> {
        let node = self.read_node(page)?;
        if let Some(l) = expect_level {
            if node.level != l {
                return Err(GistError::Corrupt(format!(
                    "page {page}: level {} expected {l}",
                    node.level
                )));
            }
        }
        if !is_root && node.entries.len() < self.meta.min_fill as usize {
            return Err(GistError::Corrupt(format!("page {page}: underfull")));
        }
        if node.is_leaf() {
            *leaves += node.entries.len() as u64;
            if node.entries.is_empty() {
                return Ok(None);
            }
            return Ok(Some(self.node_union(&node)?));
        }
        for e in &node.entries {
            let parent_key = self.ext.decode_key(&e.key)?;
            let child_union = self
                .check_rec(e.payload as u32, Some(node.level - 1), false, leaves)?
                .ok_or_else(|| GistError::Corrupt(format!("page {page}: empty child")))?;
            if self.ext.penalty(&parent_key, &child_union) != 0 {
                return Err(GistError::Corrupt(format!(
                    "page {page}: parent key does not cover its child"
                )));
            }
        }
        Ok(Some(self.node_union(&node)?))
    }
}

/// A depth-first scan cursor (node images cached per stack frame).
pub struct GistCursor {
    stack: Vec<(RawNode, usize)>,
    root: u32,
    primed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately broken extension: pick_split returns an empty
    /// group. The skeleton must reject it instead of corrupting.
    struct BadSplit;
    impl GistExtension for BadSplit {
        type Key = i64;
        type Query = i64;
        fn encode_key(&self, key: &i64, out: &mut Vec<u8>) {
            out.extend_from_slice(&key.to_le_bytes());
        }
        fn decode_key(&self, bytes: &[u8]) -> Result<i64> {
            Ok(i64::from_le_bytes(
                bytes
                    .try_into()
                    .map_err(|_| GistError::Corrupt("key size".into()))?,
            ))
        }
        fn consistent(&self, key: &i64, query: &i64, _leaf: bool) -> bool {
            key == query
        }
        fn union(&self, keys: &[i64]) -> i64 {
            *keys.iter().max().unwrap()
        }
        fn penalty(&self, existing: &i64, new: &i64) -> i128 {
            (*new as i128 - *existing as i128).max(0)
        }
        fn pick_split(&self, keys: &[i64]) -> (Vec<usize>, Vec<usize>) {
            (Vec::new(), (0..keys.len()).collect())
        }
    }

    #[test]
    fn misbehaving_extension_is_rejected() {
        use grt_sbspace::{IsolationLevel, LockMode, Sbspace, SbspaceOptions};
        let sb = Sbspace::mem(SbspaceOptions {
            pool_pages: 8192,
            ..Default::default()
        });
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        let mut tree = GistTree::create(BadSplit, h, GistTreeOptions::default()).unwrap();
        // Insert until a split is needed; the bad pick_split must fail
        // loudly (Usage error), not corrupt the tree.
        let mut failed = false;
        for i in 0..2000i64 {
            match tree.insert(&i, i as u64) {
                Ok(()) => {}
                Err(GistError::Usage(_)) => {
                    failed = true;
                    break;
                }
                Err(other) => panic!("unexpected {other}"),
            }
        }
        assert!(failed, "the empty split must be detected");
        drop(tree);
        txn.commit().unwrap();
    }
}
