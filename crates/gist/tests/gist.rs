//! GiST tests: both instantiations against linear-scan oracles,
//! structural invariants under churn, and the full DataBlade wiring.

use grt_gist::am::install_gist_blade;
use grt_gist::{GistTree, GistTreeOptions, IntRange, IntRangeExt, RectExt, RectKey};
use grt_ids::{Database, DatabaseOptions, Value};
use grt_sbspace::{IsolationLevel, LoHandle, LockMode, Sbspace, SbspaceOptions};
use proptest::prelude::*;

fn fresh_lo() -> LoHandle {
    let sb = Sbspace::mem(SbspaceOptions {
        pool_pages: 8192,
        ..Default::default()
    });
    let txn = sb.begin(IsolationLevel::ReadCommitted);
    let lo = sb.create_lo(&txn).unwrap();
    let h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
    std::mem::forget(txn);
    std::mem::forget(sb);
    h
}

#[test]
fn interval_tree_matches_linear_scan() {
    let mut tree = GistTree::create(IntRangeExt, fresh_lo(), GistTreeOptions::default()).unwrap();
    let data: Vec<IntRange> = (0..500)
        .map(|i| IntRange::new((i * 37) % 1000, (i * 37) % 1000 + i % 23))
        .collect();
    for (i, r) in data.iter().enumerate() {
        tree.insert(r, i as u64).unwrap();
    }
    assert_eq!(tree.len(), 500);
    assert!(tree.height() > 1);
    tree.check().unwrap();
    for q in [
        IntRange::new(0, 50),
        IntRange::new(500, 510),
        IntRange::point(777),
        IntRange::new(-100, -1),
    ] {
        let mut got: Vec<u64> = tree
            .search(&q)
            .unwrap()
            .into_iter()
            .map(|(_, id)| id)
            .collect();
        let mut expected: Vec<u64> = data
            .iter()
            .enumerate()
            .filter(|(_, r)| r.overlaps(&q))
            .map(|(i, _)| i as u64)
            .collect();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected, "query {q:?}");
    }
}

#[test]
fn interval_tree_delete_and_condense() {
    let mut tree =
        GistTree::create(IntRangeExt, fresh_lo(), GistTreeOptions { min_fill: 3 }).unwrap();
    let data: Vec<IntRange> = (0..300).map(|i| IntRange::new(i, i + 4)).collect();
    for (i, r) in data.iter().enumerate() {
        tree.insert(r, i as u64).unwrap();
    }
    // Delete a contiguous prefix: the leaves covering it drain below
    // min_fill and dissolve.
    let mut condensed = false;
    for (i, r) in data.iter().enumerate().take(250) {
        let out = tree.delete(r, i as u64).unwrap();
        assert!(out.found, "{i}");
        condensed |= out.condensed;
        assert!(!tree.delete(r, i as u64).unwrap().found);
    }
    assert!(condensed, "contiguous deletion must condense the tree");
    assert_eq!(tree.len(), 50);
    tree.check().unwrap();
    let got = tree.search(&IntRange::new(0, 400)).unwrap();
    assert_eq!(got.len(), 50);
    assert!(got.iter().all(|(_, id)| *id >= 250));
}

#[test]
fn rect_tree_matches_linear_scan() {
    let mut tree = GistTree::create(RectExt, fresh_lo(), GistTreeOptions { min_fill: 2 }).unwrap();
    let data: Vec<RectKey> = (0..400)
        .map(|i| {
            let x = (i * 37) % 900;
            let y = (i * 59) % 900;
            RectKey::new(x, x + 6 + i % 9, y, y + 4 + i % 7)
        })
        .collect();
    for (i, r) in data.iter().enumerate() {
        tree.insert(r, i as u64).unwrap();
    }
    tree.check().unwrap();
    for q in [
        RectKey::new(0, 120, 0, 120),
        RectKey::new(500, 600, 300, 800),
        RectKey::new(-5, -1, -5, -1),
    ] {
        let mut got: Vec<u64> = tree
            .search(&q)
            .unwrap()
            .into_iter()
            .map(|(_, id)| id)
            .collect();
        let mut expected: Vec<u64> = data
            .iter()
            .enumerate()
            .filter(|(_, r)| r.overlaps(&q))
            .map(|(i, _)| i as u64)
            .collect();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected, "query {q:?}");
    }
}

#[test]
fn gist_blade_serves_sql() {
    let db = Database::new(DatabaseOptions::default());
    install_gist_blade(&db).unwrap();
    let conn = db.connect();
    conn.exec("CREATE TABLE spans (id integer, r IntRange_t)")
        .unwrap();
    conn.exec("CREATE INDEX span_ix ON spans(r gist_range_ops) USING gist_am")
        .unwrap();
    for i in 0..200i64 {
        conn.exec(&format!(
            "INSERT INTO spans VALUES ({i}, '{}..{}')",
            i * 5,
            i * 5 + 8
        ))
        .unwrap();
    }
    let r = conn
        .exec("SELECT id FROM spans WHERE RangeOverlaps(r, '100..120')")
        .unwrap();
    let mut ids: Vec<i64> = r
        .rows
        .iter()
        .map(|row| match &row[0] {
            Value::Int(i) => *i,
            other => panic!("{other}"),
        })
        .collect();
    ids.sort_unstable();
    // Spans i*5..i*5+8 overlapping [100, 120]: i in 19..=24.
    assert_eq!(ids, vec![19, 20, 21, 22, 23, 24]);
    // DML maintenance + consistency.
    conn.exec("DELETE FROM spans WHERE RangeOverlaps(r, '0..200')")
        .unwrap();
    conn.exec("CHECK INDEX span_ix").unwrap();
    let r = conn
        .exec("SELECT id FROM spans WHERE RangeOverlaps(r, '100..120')")
        .unwrap();
    assert!(r.rows.iter().all(|row| row[0] != Value::Int(19)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random insert/delete churn keeps the generic tree equivalent to
    /// a linear scan and structurally sound.
    #[test]
    fn random_churn_matches_oracle(
        ops in proptest::collection::vec((0i64..500, 0i64..40, proptest::bool::ANY), 1..150),
        q_lo in 0i64..500,
        q_len in 0i64..100,
    ) {
        let mut tree =
            GistTree::create(IntRangeExt, fresh_lo(), GistTreeOptions { min_fill: 2 }).unwrap();
        let mut live: Vec<(u64, IntRange)> = Vec::new();
        let mut next = 0u64;
        for (lo, len, delete) in ops {
            if delete && !live.is_empty() {
                let (id, r) = live.swap_remove((lo as usize) % live.len());
                prop_assert!(tree.delete(&r, id).unwrap().found);
            } else {
                let r = IntRange::new(lo, lo + len);
                tree.insert(&r, next).unwrap();
                live.push((next, r));
                next += 1;
            }
        }
        tree.check().unwrap();
        let q = IntRange::new(q_lo, q_lo + q_len);
        let mut got: Vec<u64> = tree.search(&q).unwrap().into_iter().map(|(_, id)| id).collect();
        let mut expected: Vec<u64> = live
            .iter()
            .filter(|(_, r)| r.overlaps(&q))
            .map(|(id, _)| *id)
            .collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}
