//! Property-based SQL tests: randomly generated WHERE trees evaluated
//! through the engine must agree with a direct Rust oracle, and the
//! parser must be total (no panics) on arbitrary input.

use grt_ids::sql::{parse, Expr, Lit, Statement};
use grt_ids::{Database, DatabaseOptions, Value};
use proptest::prelude::*;

/// A tiny predicate AST we can both render to SQL and evaluate in Rust.
#[derive(Debug, Clone)]
enum Pred {
    Cmp(u8, i64), // column (a|b|c) op-coded vs constant
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    let leaf = (0u8..9, -20i64..40).prop_map(|(code, k)| Pred::Cmp(code, k));
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Pred::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Pred::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Pred::Not(Box::new(a))),
        ]
    })
}

impl Pred {
    fn col(&self, code: u8) -> &'static str {
        ["a", "b", "c"][(code % 3) as usize]
    }

    fn op(&self, code: u8) -> &'static str {
        ["=", "!=", "<"][(code / 3 % 3) as usize]
    }

    fn to_sql(&self) -> String {
        match self {
            Pred::Cmp(code, k) => format!("{} {} {}", self.col(*code), self.op(*code), k),
            Pred::And(a, b) => format!("({} AND {})", a.to_sql(), b.to_sql()),
            Pred::Or(a, b) => format!("({} OR {})", a.to_sql(), b.to_sql()),
            Pred::Not(a) => format!("NOT ({})", a.to_sql()),
        }
    }

    fn eval(&self, row: &[i64; 3]) -> bool {
        match self {
            Pred::Cmp(code, k) => {
                let v = row[(*code % 3) as usize];
                match *code / 3 % 3 {
                    0 => v == *k,
                    1 => v != *k,
                    _ => v < *k,
                }
            }
            Pred::And(a, b) => a.eval(row) && b.eval(row),
            Pred::Or(a, b) => a.eval(row) || b.eval(row),
            Pred::Not(a) => !a.eval(row),
        }
    }
}

fn seeded_db(rows: &[[i64; 3]]) -> Database {
    let db = Database::new(DatabaseOptions::default());
    let conn = db.connect();
    conn.exec("CREATE TABLE t (a integer, b integer, c integer)")
        .unwrap();
    for r in rows {
        conn.exec(&format!(
            "INSERT INTO t VALUES ({}, {}, {})",
            r[0], r[1], r[2]
        ))
        .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// WHERE evaluation through the engine agrees with the Rust oracle.
    #[test]
    fn where_trees_match_oracle(
        rows in proptest::collection::vec([-20i64..40, -20i64..40, -20i64..40], 0..25),
        pred in arb_pred(),
    ) {
        let rows: Vec<[i64; 3]> = rows;
        let db = seeded_db(&rows);
        let conn = db.connect();
        let sql = format!("SELECT a FROM t WHERE {}", pred.to_sql());
        let result = conn.exec(&sql).unwrap();
        let got = result.rows.len();
        let expected = rows.iter().filter(|r| pred.eval(r)).count();
        prop_assert_eq!(got, expected, "{}", sql);
    }

    /// The parser never panics; it returns Ok or a clean error.
    #[test]
    fn parser_is_total(input in "\\PC{0,120}") {
        let _ = parse(&input);
    }

    /// Statements that parse, re-render via debug, and re-parse are
    /// stable for the INSERT fragment (a light roundtrip check).
    #[test]
    fn insert_literals_roundtrip(vals in proptest::collection::vec(-1000i64..1000, 1..8)) {
        let list = vals.iter().map(i64::to_string).collect::<Vec<_>>().join(", ");
        let stmt = parse(&format!("INSERT INTO t VALUES ({list})")).unwrap();
        match stmt {
            Statement::Insert { values, .. } => {
                prop_assert_eq!(values.len(), vals.len());
                for (e, v) in values.iter().zip(&vals) {
                    prop_assert_eq!(e, &Expr::Literal(Lit::Int(*v)));
                }
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// UPDATE through the engine matches the oracle's rewrite.
    #[test]
    fn update_matches_oracle(
        rows in proptest::collection::vec([-20i64..40, -20i64..40, -20i64..40], 1..20),
        pred in arb_pred(),
        newval in -99i64..99,
    ) {
        let rows: Vec<[i64; 3]> = rows;
        let db = seeded_db(&rows);
        let conn = db.connect();
        conn.exec(&format!("UPDATE t SET b = {newval} WHERE {}", pred.to_sql())).unwrap();
        let result = conn.exec("SELECT a, b, c FROM t").unwrap();
        let mut got: Vec<[i64; 3]> = result
            .rows
            .iter()
            .map(|r| {
                let v = |i: usize| match &r[i] {
                    Value::Int(x) => *x,
                    other => panic!("{other}"),
                };
                [v(0), v(1), v(2)]
            })
            .collect();
        let mut expected: Vec<[i64; 3]> = rows
            .iter()
            .map(|r| if pred.eval(r) { [r[0], newval, r[2]] } else { *r })
            .collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}
