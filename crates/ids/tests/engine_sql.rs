//! End-to-end engine tests: SQL over heap tables, a toy secondary
//! access method exercised through the full Virtual-Index Interface,
//! transactions, and tracing.

use grt_ids::vii::QualNode;
use grt_ids::{
    AccessMethod, AmContext, Database, DatabaseOptions, IdsError, IndexDescriptor, RowId,
    ScanDescriptor, Value,
};
use grt_sbspace::{LoId, LockMode};
use std::sync::Arc;

/// A deliberately naive access method: an unsorted list of
/// `(i64 key, rowid)` pairs inside one large object. It supports one
/// strategy function, `IntEq(col, const)`, and exists purely to
/// exercise the engine's purpose-function call sequences.
struct IntListAm;

fn load_pairs(idx: &IndexDescriptor, ctx: &AmContext) -> Vec<(i64, u64)> {
    let lo = {
        let frags = ctx.fragments.lock();
        LoId(*frags.get(&idx.index_name).expect("fragment registered"))
    };
    let h = ctx
        .space
        .open_lo(ctx.txn, lo, LockMode::Shared)
        .expect("open index lo");
    let mut len_buf = [0u8; 8];
    h.read_at(0, &mut len_buf).unwrap();
    let n = u64::from_le_bytes(len_buf) as usize;
    let mut data = vec![0u8; n * 16];
    h.read_at(8, &mut data).unwrap();
    (0..n)
        .map(|i| {
            let k = i64::from_le_bytes(data[i * 16..i * 16 + 8].try_into().unwrap());
            let r = u64::from_le_bytes(data[i * 16 + 8..i * 16 + 16].try_into().unwrap());
            (k, r)
        })
        .collect()
}

fn store_pairs(idx: &IndexDescriptor, ctx: &AmContext, pairs: &[(i64, u64)]) {
    let lo = {
        let frags = ctx.fragments.lock();
        LoId(*frags.get(&idx.index_name).expect("fragment registered"))
    };
    let mut h = ctx
        .space
        .open_lo(ctx.txn, lo, LockMode::Exclusive)
        .expect("open index lo");
    let mut bytes = Vec::with_capacity(8 + pairs.len() * 16);
    bytes.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
    for (k, r) in pairs {
        bytes.extend_from_slice(&k.to_le_bytes());
        bytes.extend_from_slice(&r.to_le_bytes());
    }
    h.write_at(0, &bytes).unwrap();
}

fn key_of(row: &[Value]) -> Result<i64, IdsError> {
    match row.first() {
        Some(Value::Int(k)) => Ok(*k),
        other => Err(IdsError::AccessMethod(format!("bad key {other:?}"))),
    }
}

struct IntScan {
    hits: Vec<(i64, u64)>,
    pos: usize,
}

impl AccessMethod for IntListAm {
    fn am_create(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<(), IdsError> {
        let lo = ctx.space.create_lo(ctx.txn)?;
        ctx.fragments.lock().insert(idx.index_name.clone(), lo.0);
        let mut h = ctx.space.open_lo(ctx.txn, lo, LockMode::Exclusive)?;
        h.write_at(0, &0u64.to_le_bytes())?;
        Ok(())
    }

    fn am_drop(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<(), IdsError> {
        if let Some(lo) = ctx.fragments.lock().remove(&idx.index_name) {
            ctx.space.drop_lo(ctx.txn, LoId(lo))?;
        }
        Ok(())
    }

    fn am_beginscan(
        &self,
        idx: &IndexDescriptor,
        scan: &mut ScanDescriptor,
        ctx: &AmContext,
    ) -> Result<(), IdsError> {
        let pairs = load_pairs(idx, ctx);
        let hits = match &scan.qual.root {
            Some(QualNode::Simple(q)) if q.func.eq_ignore_ascii_case("IntEq") => {
                let Some(Value::Int(k)) = &q.constant else {
                    return Err(IdsError::AccessMethod("IntEq needs an int".into()));
                };
                pairs.into_iter().filter(|(key, _)| key == k).collect()
            }
            None => pairs,
            other => {
                return Err(IdsError::AccessMethod(format!(
                    "unsupported qualification {other:?}"
                )))
            }
        };
        scan.user_data = Some(Box::new(IntScan { hits, pos: 0 }));
        Ok(())
    }

    fn am_rescan(
        &self,
        _idx: &IndexDescriptor,
        scan: &mut ScanDescriptor,
        _ctx: &AmContext,
    ) -> Result<(), IdsError> {
        if let Some(state) = scan
            .user_data
            .as_mut()
            .and_then(|b| b.downcast_mut::<IntScan>())
        {
            state.pos = 0;
        }
        Ok(())
    }

    fn am_getnext(
        &self,
        _idx: &IndexDescriptor,
        scan: &mut ScanDescriptor,
        _ctx: &AmContext,
    ) -> Result<Option<(RowId, Vec<Value>)>, IdsError> {
        let state = scan
            .user_data
            .as_mut()
            .and_then(|b| b.downcast_mut::<IntScan>())
            .ok_or_else(|| IdsError::AccessMethod("scan not begun".into()))?;
        if state.pos >= state.hits.len() {
            return Ok(None);
        }
        let (k, rid) = state.hits[state.pos];
        state.pos += 1;
        Ok(Some((RowId(rid), vec![Value::Int(k)])))
    }

    fn am_insert(
        &self,
        idx: &IndexDescriptor,
        row: &[Value],
        rowid: RowId,
        ctx: &AmContext,
    ) -> Result<(), IdsError> {
        let mut pairs = load_pairs(idx, ctx);
        pairs.push((key_of(row)?, rowid.0));
        store_pairs(idx, ctx, &pairs);
        Ok(())
    }

    fn am_delete(
        &self,
        idx: &IndexDescriptor,
        row: &[Value],
        rowid: RowId,
        ctx: &AmContext,
    ) -> Result<(), IdsError> {
        let key = key_of(row)?;
        let mut pairs = load_pairs(idx, ctx);
        pairs.retain(|&(k, r)| !(k == key && r == rowid.0));
        store_pairs(idx, ctx, &pairs);
        Ok(())
    }

    fn am_scancost(
        &self,
        idx: &IndexDescriptor,
        _qual: &grt_ids::QualDescriptor,
        ctx: &AmContext,
    ) -> Result<f64, IdsError> {
        Ok(load_pairs(idx, ctx).len() as f64 / 100.0)
    }
}

/// Boots a database with the toy blade "loaded" and registered via its
/// SQL script.
fn setup() -> Database {
    let db = Database::new(DatabaseOptions::default());
    db.install_library("intlist.bld", Arc::new(IntListAm));
    // Purpose-function symbols (dummy bodies: never invoked directly).
    for sym in [
        "il_create",
        "il_drop",
        "il_beginscan",
        "il_getnext",
        "il_rescan",
        "il_insert",
        "il_delete",
        "il_scancost",
    ] {
        db.install_symbol(
            &format!("usr/intlist.bld({sym})"),
            Arc::new(|_args: &[Value], _ctx: &AmContext| {
                Err(IdsError::Routine("internal purpose function".into()))
            }),
        );
    }
    // The strategy function, usable both from the index and standalone.
    db.install_symbol(
        "usr/intlist.bld(int_eq)",
        Arc::new(|args: &[Value], _ctx: &AmContext| match args {
            [Value::Int(a), Value::Int(b)] => Ok(Value::Bool(a == b)),
            _ => Err(IdsError::Type("IntEq(int, int)".into())),
        }),
    );
    let conn = db.connect();
    for sym in [
        "il_create",
        "il_drop",
        "il_beginscan",
        "il_getnext",
        "il_rescan",
        "il_insert",
        "il_delete",
        "il_scancost",
    ] {
        conn.exec(&format!(
            "CREATE FUNCTION {sym}(pointer) RETURNING int \
             EXTERNAL NAME 'usr/intlist.bld({sym})' LANGUAGE c"
        ))
        .unwrap();
    }
    conn.exec(
        "CREATE FUNCTION IntEq(integer, integer) RETURNING boolean \
         EXTERNAL NAME 'usr/intlist.bld(int_eq)' LANGUAGE c",
    )
    .unwrap();
    conn.exec(
        "CREATE SECONDARY ACCESS_METHOD intlist_am ( \
           am_create = il_create, am_drop = il_drop, am_beginscan = il_beginscan, \
           am_getnext = il_getnext, am_rescan = il_rescan, am_insert = il_insert, \
           am_delete = il_delete, am_scancost = il_scancost, am_sptype = 'S' )",
    )
    .unwrap();
    conn.exec("CREATE OPCLASS intlist_ops FOR intlist_am STRATEGIES(IntEq)")
        .unwrap();
    db
}

#[test]
fn seq_scan_crud_without_index() {
    let db = setup();
    let conn = db.connect();
    conn.exec("CREATE TABLE nums (n integer, label text)")
        .unwrap();
    for i in 0..20 {
        conn.exec(&format!("INSERT INTO nums VALUES ({i}, 'row {i}')"))
            .unwrap();
    }
    let r = conn.exec("SELECT label FROM nums WHERE n = 7").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Text("row 7".into())]]);
    let r = conn
        .exec("SELECT * FROM nums WHERE n >= 17 OR n < 2")
        .unwrap();
    assert_eq!(r.rows.len(), 5);
    conn.exec("DELETE FROM nums WHERE n < 10").unwrap();
    let r = conn.exec("SELECT n FROM nums").unwrap();
    assert_eq!(r.rows.len(), 10);
    conn.exec("UPDATE nums SET label = 'renamed' WHERE n = 15")
        .unwrap();
    let r = conn.exec("SELECT label FROM nums WHERE n = 15").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Text("renamed".into())]]);
}

#[test]
fn index_scan_used_and_correct() {
    let db = setup();
    let conn = db.connect();
    conn.exec("CREATE TABLE nums (n integer, label text)")
        .unwrap();
    for i in 0..50 {
        conn.exec(&format!("INSERT INTO nums VALUES ({}, 'row {i}')", i % 10))
            .unwrap();
    }
    conn.exec("CREATE INDEX num_ix ON nums(n intlist_ops) USING intlist_am IN spc")
        .unwrap();
    // Trace the SELECT's purpose-function sequence (Figure 6(b)).
    db.trace().on("AM", 1);
    db.trace().take();
    let r = conn
        .exec("SELECT label FROM nums WHERE IntEq(n, 3)")
        .unwrap();
    assert_eq!(r.rows.len(), 5);
    let calls: Vec<String> = db.trace().take().into_iter().map(|e| e.message).collect();
    assert_eq!(calls[0], "il_scancost", "planner consults am_scancost");
    // The engine pulls rows through the batched fetch slot; this AM
    // leaves it unbound, so it traces under the generic name (and the
    // default implementation delegates to the bound il_getnext).
    assert_eq!(
        calls[1..4],
        [
            "am_open".to_string(),
            "il_beginscan".into(),
            "am_getnext_batch".into()
        ],
        "unbound slots trace under their generic names: {calls:?}"
    );
    assert!(!calls.contains(&"il_delete".to_string()));
    assert_eq!(calls.last().unwrap(), "am_close");

    // The same predicate without an index-compatible shape: seq scan
    // (both arguments constants, column comparison) still works.
    let r2 = conn.exec("SELECT label FROM nums WHERE n = 3").unwrap();
    assert_eq!(r2.rows.len(), 5);

    // Index is maintained by DML.
    conn.exec("DELETE FROM nums WHERE IntEq(n, 3)").unwrap();
    let r3 = conn
        .exec("SELECT label FROM nums WHERE IntEq(n, 3)")
        .unwrap();
    assert!(r3.rows.is_empty());
    conn.exec("INSERT INTO nums VALUES (3, 'back')").unwrap();
    let r4 = conn
        .exec("SELECT label FROM nums WHERE IntEq(n, 3)")
        .unwrap();
    assert_eq!(r4.rows.len(), 1);
}

#[test]
fn index_on_existing_rows_and_drop() {
    let db = setup();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (n integer)").unwrap();
    for i in 0..10 {
        conn.exec(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    conn.exec("CREATE INDEX tix ON t(n intlist_ops) USING intlist_am")
        .unwrap();
    let r = conn.exec("SELECT n FROM t WHERE IntEq(n, 4)").unwrap();
    assert_eq!(r.rows.len(), 1);
    // SYSINDICES and SYSFRAGMENTS record the index.
    let (_, rows) = db.catalog_dump("sysindices").unwrap();
    assert_eq!(rows.len(), 1);
    let (_, frows) = db.catalog_dump("sysfragments").unwrap();
    assert_eq!(frows.len(), 1);
    conn.exec("DROP INDEX tix").unwrap();
    let (_, frows) = db.catalog_dump("sysfragments").unwrap();
    assert!(frows.is_empty());
    // Queries still work (seq scan).
    let r = conn.exec("SELECT n FROM t WHERE IntEq(n, 4)").unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn transactions_roll_back_heap_and_index() {
    let db = setup();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (n integer)").unwrap();
    conn.exec("CREATE INDEX tix ON t(n intlist_ops) USING intlist_am")
        .unwrap();
    conn.exec("INSERT INTO t VALUES (1)").unwrap();
    conn.exec("BEGIN WORK").unwrap();
    conn.exec("INSERT INTO t VALUES (2)").unwrap();
    conn.exec("INSERT INTO t VALUES (3)").unwrap();
    let r = conn.exec("SELECT n FROM t").unwrap();
    assert_eq!(r.rows.len(), 3, "uncommitted rows visible to own txn");
    conn.exec("ROLLBACK WORK").unwrap();
    let r = conn.exec("SELECT n FROM t").unwrap();
    assert_eq!(r.rows.len(), 1, "rollback undid heap rows");
    let r = conn.exec("SELECT n FROM t WHERE IntEq(n, 2)").unwrap();
    assert!(r.rows.is_empty(), "rollback undid index entries");

    conn.exec("BEGIN WORK").unwrap();
    conn.exec("INSERT INTO t VALUES (9)").unwrap();
    conn.exec("COMMIT WORK").unwrap();
    let r = conn.exec("SELECT n FROM t WHERE IntEq(n, 9)").unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn catalogs_and_errors() {
    let db = setup();
    let conn = db.connect();
    let (_, ams) = db.catalog_dump("sysams").unwrap();
    assert_eq!(ams.len(), 1);
    let (_, ocs) = db.catalog_dump("sysopclasses").unwrap();
    assert_eq!(ocs.len(), 1);
    let (_, procs) = db.catalog_dump("sysprocedures").unwrap();
    assert!(procs.len() >= 9);

    assert!(matches!(
        conn.exec("SELECT * FROM missing"),
        Err(IdsError::NotFound(_))
    ));
    conn.exec("CREATE TABLE t (n integer)").unwrap();
    assert!(matches!(
        conn.exec("CREATE TABLE t (n integer)"),
        Err(IdsError::Duplicate(_))
    ));
    assert!(matches!(
        conn.exec("INSERT INTO t VALUES (1, 2)"),
        Err(IdsError::Semantic(_))
    ));
    assert!(matches!(
        conn.exec("SELECT * FROM t WHERE Nope(n, 1)"),
        Err(IdsError::NotFound(_))
    ));
    // An opclass referencing an unknown function is rejected.
    assert!(conn
        .exec("CREATE OPCLASS bad FOR intlist_am STRATEGIES(missing_fn)")
        .is_err());
    // An index with an opclass of another access method is rejected.
    conn.exec("CREATE TABLE u (n integer)").unwrap();
    assert!(conn
        .exec("CREATE INDEX uix ON u(n nonexistent_ops) USING intlist_am")
        .is_err());
}

#[test]
fn insert_trace_matches_figure_6a() {
    let db = setup();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (n integer)").unwrap();
    conn.exec("CREATE INDEX tix ON t(n intlist_ops) USING intlist_am")
        .unwrap();
    db.trace().on("AM", 1);
    db.trace().take();
    conn.exec("INSERT INTO t VALUES (5)").unwrap();
    let calls: Vec<String> = db.trace().take().into_iter().map(|e| e.message).collect();
    assert_eq!(
        calls,
        vec!["am_open".to_string(), "il_insert".into(), "am_close".into()],
        "INSERT drives am_open, am_insert, am_close"
    );
}

#[test]
fn system_catalogs_are_queryable() {
    let db = setup();
    let conn = db.connect();
    conn.exec("CREATE TABLE t (n integer)").unwrap();
    conn.exec("CREATE INDEX tix ON t(n intlist_ops) USING intlist_am")
        .unwrap();
    let r = conn.exec("SELECT * FROM sysams").unwrap();
    assert_eq!(r.rows.len(), 1);
    let r = conn
        .exec("SELECT index_name, table FROM sysindices")
        .unwrap();
    assert_eq!(r.columns, vec!["index_name".to_string(), "table".into()]);
    assert_eq!(r.rows[0][0], Value::Text("tix".into()));
    let r = conn.exec("SELECT name FROM sysprocedures").unwrap();
    assert!(r.rows.len() >= 9);
    assert!(conn.exec("SELECT * FROM sysams WHERE x = 1").is_err());
    assert!(conn.exec("SELECT nope FROM sysams").is_err());
}
