//! Tests for the `LOAD` command (the text-file import support-function
//! path of Section 6.3) and `ALTER FUNCTION ... NEGATOR/COMMUTATOR`
//! (the Section 5.2 relationship declarations).

use grt_ids::opaque::OpaqueType;
use grt_ids::{AmContext, Database, DatabaseOptions, IdsError, Value};
use std::sync::Arc;

fn db_with_type() -> Database {
    let db = Database::new(DatabaseOptions::default());
    // A toy opaque type whose *import* differs from plain text input:
    // import accepts "a:b", text input accepts "a,b" — so the test can
    // prove LOAD goes through the import path.
    let base = OpaqueType::new(
        "Pair",
        Arc::new(|text: &str| {
            let (a, b) = text
                .split_once(',')
                .ok_or_else(|| IdsError::Type("expected a,b".into()))?;
            let a: i32 = a.trim().parse().map_err(|_| IdsError::Type("a".into()))?;
            let b: i32 = b.trim().parse().map_err(|_| IdsError::Type("b".into()))?;
            let mut out = a.to_le_bytes().to_vec();
            out.extend_from_slice(&b.to_le_bytes());
            Ok(out)
        }),
        Arc::new(|bytes: &[u8]| {
            let a = i32::from_le_bytes(bytes[0..4].try_into().unwrap());
            let b = i32::from_le_bytes(bytes[4..8].try_into().unwrap());
            Ok(format!("{a},{b}"))
        }),
    );
    let text_input = Arc::clone(&base.input);
    let ty = OpaqueType {
        import: Arc::new(move |text: &str| {
            let normalized = text.replace(':', ",");
            text_input(&normalized)
        }),
        ..base
    };
    db.install_opaque_type(ty);
    db
}

#[test]
fn load_goes_through_the_import_function() {
    let db = db_with_type();
    let conn = db.connect();
    conn.exec("CREATE TABLE points (label text, p Pair, n integer)")
        .unwrap();
    let dir = std::env::temp_dir();
    let path = dir.join(format!("ids-load-{}.unl", std::process::id()));
    std::fs::write(&path, "alpha|1:2|10\nbeta|3:4|20\n\ngamma|5:6|30\n").unwrap();
    let r = conn
        .exec(&format!(
            "LOAD FROM '{}' INSERT INTO points",
            path.display()
        ))
        .unwrap();
    assert_eq!(r.message, "3 rows loaded");
    let rows = conn.exec("SELECT label, p, n FROM points").unwrap();
    assert_eq!(rows.rows.len(), 3);
    // The rendered opaque value uses the text-output form.
    assert_eq!(rows.rendered[1][1], "3,4");
    assert_eq!(rows.rows[2][2], Value::Int(30));
    std::fs::remove_file(&path).ok();
}

#[test]
fn load_errors_are_clean() {
    let db = db_with_type();
    let conn = db.connect();
    conn.exec("CREATE TABLE points (p Pair)").unwrap();
    // Missing file.
    assert!(matches!(
        conn.exec("LOAD FROM '/no/such/file.unl' INSERT INTO points"),
        Err(IdsError::Semantic(_))
    ));
    // Wrong arity.
    let path = std::env::temp_dir().join(format!("ids-load-bad-{}.unl", std::process::id()));
    std::fs::write(&path, "1:2|extra\n").unwrap();
    let err = conn
        .exec(&format!(
            "LOAD FROM '{}' INSERT INTO points",
            path.display()
        ))
        .unwrap_err();
    assert!(matches!(err, IdsError::Semantic(_)), "{err:?}");
    // The failed LOAD rolled back: nothing was inserted.
    assert!(conn.exec("SELECT * FROM points").unwrap().rows.is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn alter_function_records_negator_and_commutator() {
    let db = Database::new(DatabaseOptions::default());
    for sym in ["eq", "ne"] {
        db.install_symbol(
            &format!("lib.bld({sym})"),
            Arc::new(move |_args: &[Value], _ctx: &AmContext| Ok(Value::Bool(true))),
        );
    }
    let conn = db.connect();
    conn.exec(
        "CREATE FUNCTION PairEq(Pair, Pair) RETURNING boolean \
         EXTERNAL NAME 'lib.bld(eq)' LANGUAGE c",
    )
    .unwrap();
    conn.exec(
        "CREATE FUNCTION PairNe(Pair, Pair) RETURNING boolean \
         EXTERNAL NAME 'lib.bld(ne)' LANGUAGE c",
    )
    .unwrap();
    conn.exec("ALTER FUNCTION PairEq NEGATOR PairNe COMMUTATOR PairEq")
        .unwrap();
    let r = db.resolve_routine("PairEq", &[None, None]).unwrap();
    assert_eq!(r.negator.as_deref(), Some("PairNe"));
    assert_eq!(r.commutator.as_deref(), Some("PairEq"));
    // The link is symmetric, as Informix records it.
    let n = db.resolve_routine("PairNe", &[None, None]).unwrap();
    assert_eq!(n.negator.as_deref(), Some("PairEq"));
    // Unknown functions are rejected.
    assert!(conn.exec("ALTER FUNCTION Missing NEGATOR PairNe").is_err());
    assert!(conn.exec("ALTER FUNCTION PairEq").is_err());
}
