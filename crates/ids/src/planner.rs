//! The query planner: matching WHERE-clause functions against operator
//! classes and choosing an access path.
//!
//! "When the query optimizer meets a function in the WHERE clause of an
//! SQL statement, it determines if a virtual index is applicable ... by
//! checking if a virtual index exists for the column involved in the
//! function, and if this function is declared as a strategy function in
//! the operator class of the corresponding access method" (Section 4).
//! Qualifications pushed to the index obey the single-column shapes of
//! Section 5.1; anything else stays behind as a residual filter.

use crate::catalog::{Catalog, IndexMeta, TableMeta};
use crate::opclass::OpClassRegistry;
use crate::sql::Expr;
use crate::value::{DataType, Value};
use crate::vii::{QualDescriptor, QualNode, SimpleQual};

/// The chosen access path for one table.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Full scan of the heap, filtering with the whole WHERE clause.
    SeqScan {
        /// The filter (the original WHERE clause).
        filter: Option<Expr>,
    },
    /// Scan of a virtual index with a pushed qualification.
    IndexScan {
        /// Index name.
        index: String,
        /// The qualification handed to `am_beginscan`.
        qual: QualDescriptor,
        /// What the index could not evaluate; re-checked on each fetched
        /// row.
        residual: Option<Expr>,
    },
}

/// Constant-folding oracle supplied by the executor: evaluates an
/// expression with no column references to a [`Value`], coercing to the
/// expected type (e.g. a string literal to an opaque value).
pub type FoldFn<'a> = dyn Fn(&Expr, Option<&DataType>) -> Option<Value> + 'a;

/// Tries to convert `expr` into a qualification over `column` using only
/// the strategy functions in `strategies`.
fn to_qualnode(
    expr: &Expr,
    column: &str,
    column_type: &DataType,
    strategies: &[String],
    fold: &FoldFn,
) -> Option<QualNode> {
    let is_strategy = |name: &str| strategies.iter().any(|s| s.eq_ignore_ascii_case(name));
    match expr {
        Expr::And(parts) => {
            let children: Option<Vec<QualNode>> = parts
                .iter()
                .map(|p| to_qualnode(p, column, column_type, strategies, fold))
                .collect();
            Some(QualNode::And(children?))
        }
        Expr::Or(parts) => {
            let children: Option<Vec<QualNode>> = parts
                .iter()
                .map(|p| to_qualnode(p, column, column_type, strategies, fold))
                .collect();
            Some(QualNode::Or(children?))
        }
        Expr::Call { name, args } if is_strategy(name) => {
            // Only the single-column shapes fit a qualification
            // descriptor: f(col, const), f(const, col), f(col).
            match args.as_slice() {
                [Expr::Column(c)] if c.eq_ignore_ascii_case(column) => {
                    Some(QualNode::Simple(SimpleQual {
                        func: name.clone(),
                        column: column.to_string(),
                        constant: None,
                        commuted: false,
                    }))
                }
                [Expr::Column(c), konst] if c.eq_ignore_ascii_case(column) => {
                    let constant = fold(konst, Some(column_type))?;
                    Some(QualNode::Simple(SimpleQual {
                        func: name.clone(),
                        column: column.to_string(),
                        constant: Some(constant),
                        commuted: false,
                    }))
                }
                [konst, Expr::Column(c)] if c.eq_ignore_ascii_case(column) => {
                    let constant = fold(konst, Some(column_type))?;
                    Some(QualNode::Simple(SimpleQual {
                        func: name.clone(),
                        column: column.to_string(),
                        constant: Some(constant),
                        commuted: true,
                    }))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// A candidate index scan before costing.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Index name.
    pub index: String,
    /// Pushed qualification.
    pub qual: QualDescriptor,
    /// Residual filter.
    pub residual: Option<Expr>,
    /// Number of pushed simple predicates (tie-break heuristic).
    pub pushed_leaves: usize,
}

/// Enumerates the index-scan candidates for a WHERE clause.
pub fn candidates(
    catalog: &Catalog,
    opclasses: &OpClassRegistry,
    table: &TableMeta,
    where_clause: Option<&Expr>,
    fold: &FoldFn,
) -> Vec<Candidate> {
    let Some(expr) = where_clause else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for ix in catalog.indices_of(&table.name) {
        if let Some(c) = candidate_for(opclasses, table, ix, expr, fold) {
            out.push(c);
        }
    }
    out
}

/// Builds the candidate for one specific index, if the clause is
/// convertible. Public within the crate so a cached plan can rebuild
/// its qualification against the current catalog and bound parameters.
pub(crate) fn candidate_for(
    opclasses: &OpClassRegistry,
    table: &TableMeta,
    ix: &IndexMeta,
    expr: &Expr,
    fold: &FoldFn,
) -> Option<Candidate> {
    let column = ix.columns.first()?;
    let column_type = table.column_type(column).ok()?;
    let oc = opclasses.get(&ix.opclass).ok()?;
    // Whole-clause pushdown first.
    if let Some(root) = to_qualnode(expr, column, column_type, &oc.strategies, fold) {
        let pushed_leaves = root.leaves().len();
        return Some(Candidate {
            index: ix.name.clone(),
            qual: QualDescriptor { root: Some(root) },
            residual: None,
            pushed_leaves,
        });
    }
    // Otherwise push the convertible top-level conjuncts.
    if let Expr::And(parts) = expr {
        let mut pushed = Vec::new();
        let mut residual = Vec::new();
        for p in parts {
            match to_qualnode(p, column, column_type, &oc.strategies, fold) {
                Some(node) => pushed.push(node),
                None => residual.push(p.clone()),
            }
        }
        if !pushed.is_empty() {
            let root = if pushed.len() == 1 {
                pushed.pop().unwrap()
            } else {
                QualNode::And(pushed)
            };
            let pushed_leaves = root.leaves().len();
            let residual = match residual.len() {
                0 => None,
                1 => Some(residual.pop().unwrap()),
                _ => Some(Expr::And(residual)),
            };
            return Some(Candidate {
                index: ix.name.clone(),
                qual: QualDescriptor { root: Some(root) },
                residual,
                pushed_leaves,
            });
        }
    }
    None
}

/// Chooses the cheapest path: the best index candidate (by
/// `am_scancost`, ties by pushed predicates) against a sequential scan.
pub fn choose(
    cands: Vec<Candidate>,
    cost_of: impl Fn(&Candidate) -> f64,
    seq_cost: f64,
    where_clause: Option<&Expr>,
) -> Plan {
    let mut best: Option<(f64, Candidate)> = None;
    for c in cands {
        let cost = cost_of(&c);
        let better = match &best {
            None => true,
            Some((bc, bcand)) => {
                cost < *bc || (cost == *bc && c.pushed_leaves > bcand.pushed_leaves)
            }
        };
        if better {
            best = Some((cost, c));
        }
    }
    match best {
        Some((cost, c)) if cost <= seq_cost => Plan::IndexScan {
            index: c.index,
            qual: c.qual,
            residual: c.residual,
        },
        _ => Plan::SeqScan {
            filter: where_clause.cloned(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableMeta;
    use crate::opclass::OpClass;
    use crate::sql::{Expr, Lit};
    use grt_sbspace::LoId;

    fn setup() -> (Catalog, OpClassRegistry, TableMeta) {
        let mut catalog = Catalog::default();
        let table = TableMeta {
            name: "employees".into(),
            columns: vec![
                ("name".into(), DataType::Text),
                (
                    "time_extent".into(),
                    DataType::Opaque("GRT_TimeExtent_t".into()),
                ),
            ],
            lo: LoId(1),
        };
        catalog.tables.insert("employees".into(), table.clone());
        catalog.indices.insert(
            "grt_index".into(),
            IndexMeta {
                name: "grt_index".into(),
                table: "employees".into(),
                columns: vec!["time_extent".into()],
                access_method: "grtree_am".into(),
                opclass: "grt_opclass".into(),
                space: "spc".into(),
            },
        );
        let mut opclasses = OpClassRegistry::default();
        opclasses
            .create(OpClass {
                name: "grt_opclass".into(),
                access_method: "grtree_am".into(),
                strategies: vec!["Overlaps".into(), "Contains".into()],
                supports: vec![],
            })
            .unwrap();
        (catalog, opclasses, table)
    }

    fn fold(expr: &Expr, _ty: Option<&DataType>) -> Option<Value> {
        match expr {
            Expr::Literal(Lit::Str(s)) => Some(Value::Text(s.clone())),
            Expr::Literal(Lit::Int(i)) => Some(Value::Int(*i)),
            _ => None,
        }
    }

    fn call(f: &str, col: &str, konst: &str) -> Expr {
        Expr::Call {
            name: f.into(),
            args: vec![
                Expr::Column(col.into()),
                Expr::Literal(Lit::Str(konst.into())),
            ],
        }
    }

    #[test]
    fn strategy_call_becomes_index_candidate() {
        let (catalog, ocs, table) = setup();
        let w = call("Overlaps", "Time_Extent", "q");
        let cands = candidates(&catalog, &ocs, &table, Some(&w), &fold);
        assert_eq!(cands.len(), 1);
        assert!(cands[0].residual.is_none());
        assert_eq!(cands[0].pushed_leaves, 1);
        let qual = cands[0].qual.root.as_ref().unwrap();
        match qual {
            QualNode::Simple(s) => {
                assert_eq!(s.func, "Overlaps");
                assert!(!s.commuted);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn commuted_argument_order_detected() {
        let (catalog, ocs, table) = setup();
        let w = Expr::Call {
            name: "Contains".into(),
            args: vec![
                Expr::Literal(Lit::Str("q".into())),
                Expr::Column("time_extent".into()),
            ],
        };
        let cands = candidates(&catalog, &ocs, &table, Some(&w), &fold);
        match cands[0].qual.root.as_ref().unwrap() {
            QualNode::Simple(s) => assert!(s.commuted),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_strategy_function_not_pushed() {
        let (catalog, ocs, table) = setup();
        // Equal is NOT in the operator class: the paper's Section 5.2
        // example — the index is not usable even though Equal implies
        // Overlaps, because the engine has no way to know that.
        let w = call("Equal", "time_extent", "q");
        assert!(candidates(&catalog, &ocs, &table, Some(&w), &fold).is_empty());
    }

    #[test]
    fn and_splits_into_pushed_and_residual() {
        let (catalog, ocs, table) = setup();
        let other = Expr::Cmp {
            op: "=".into(),
            left: Box::new(Expr::Column("name".into())),
            right: Box::new(Expr::Literal(Lit::Str("Julie".into()))),
        };
        let w = Expr::And(vec![call("Overlaps", "time_extent", "q"), other.clone()]);
        let cands = candidates(&catalog, &ocs, &table, Some(&w), &fold);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].pushed_leaves, 1);
        assert_eq!(cands[0].residual, Some(other));
    }

    #[test]
    fn or_pushes_whole_tree_or_nothing() {
        let (catalog, ocs, table) = setup();
        let pushable = Expr::Or(vec![
            call("Overlaps", "time_extent", "a"),
            call("Contains", "time_extent", "b"),
        ]);
        let cands = candidates(&catalog, &ocs, &table, Some(&pushable), &fold);
        assert_eq!(cands[0].pushed_leaves, 2);
        assert!(cands[0].residual.is_none());

        // One OR branch on a different column: the whole OR cannot be
        // pushed, and OR cannot be split, so no candidate.
        let mixed = Expr::Or(vec![
            call("Overlaps", "time_extent", "a"),
            call("Overlaps", "name", "b"),
        ]);
        assert!(candidates(&catalog, &ocs, &table, Some(&mixed), &fold).is_empty());
    }

    #[test]
    fn choose_compares_costs() {
        let (catalog, ocs, table) = setup();
        let w = call("Overlaps", "time_extent", "q");
        let cands = candidates(&catalog, &ocs, &table, Some(&w), &fold);
        // Cheap index: picked.
        let plan = choose(cands.clone(), |_| 3.0, 100.0, Some(&w));
        assert!(matches!(plan, Plan::IndexScan { .. }));
        // Expensive index: sequential scan wins.
        let plan = choose(cands, |_| 1e6, 100.0, Some(&w));
        assert!(matches!(plan, Plan::SeqScan { .. }));
    }
}
