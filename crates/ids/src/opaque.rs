//! Opaque data types and their type support functions.
//!
//! An opaque type is "not interpreted by Informix" (Section 5.1): the
//! engine stores its bytes verbatim and calls the DataBlade-provided
//! support functions to convert between representations — exactly the
//! three support-function families of Section 6.3:
//!
//! 1. text input/output (SQL literals and result rendering),
//! 2. binary send/receive (client/server wire form; here an identity
//!    pair over the internal bytes, with a hook for validation),
//! 3. text-file import/export (the `LOAD` command path).

use crate::value::Value;
use crate::{IdsError, Result};
use std::sync::Arc;

/// Converts a textual literal to the internal bytes.
pub type TextInputFn = Arc<dyn Fn(&str) -> Result<Vec<u8>> + Send + Sync>;
/// Converts internal bytes to their textual representation.
pub type TextOutputFn = Arc<dyn Fn(&[u8]) -> Result<String> + Send + Sync>;
/// Validates/normalises wire bytes (binary receive).
pub type ReceiveFn = Arc<dyn Fn(&[u8]) -> Result<Vec<u8>> + Send + Sync>;

/// A registered opaque type.
#[derive(Clone)]
pub struct OpaqueType {
    /// The type name as used in SQL.
    pub name: String,
    /// Text input support function.
    pub input: TextInputFn,
    /// Text output support function.
    pub output: TextOutputFn,
    /// Binary receive support function (send is the identity).
    pub receive: ReceiveFn,
    /// Text-file import (defaults to `input`).
    pub import: TextInputFn,
    /// Text-file export (defaults to `output`).
    pub export: TextOutputFn,
}

impl OpaqueType {
    /// Declares an opaque type from the two mandatory support functions;
    /// import/export default to text input/output and receive validates
    /// through an input/output round trip.
    pub fn new(name: &str, input: TextInputFn, output: TextOutputFn) -> OpaqueType {
        let recv_in = Arc::clone(&input);
        let recv_out = Arc::clone(&output);
        OpaqueType {
            name: name.to_string(),
            import: Arc::clone(&input),
            export: Arc::clone(&output),
            receive: Arc::new(move |bytes: &[u8]| {
                // Validate foreign bytes by rendering and re-parsing.
                let text = recv_out(bytes)?;
                recv_in(&text)
            }),
            input,
            output,
        }
    }

    /// Parses a SQL literal into an opaque [`Value`].
    pub fn value_from_text(&self, text: &str) -> Result<Value> {
        Ok(Value::Opaque {
            type_name: self.name.clone(),
            bytes: (self.input)(text)?,
        })
    }

    /// Renders an opaque [`Value`] of this type.
    pub fn value_to_text(&self, value: &Value) -> Result<String> {
        match value {
            Value::Opaque { type_name, bytes } if *type_name == self.name => (self.output)(bytes),
            other => Err(IdsError::Type(format!(
                "expected {} value, got {other}",
                self.name
            ))),
        }
    }
}

impl std::fmt::Debug for OpaqueType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpaqueType")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_pair_type() -> OpaqueType {
        // A toy opaque type: "a,b" <-> 8 bytes.
        OpaqueType::new(
            "IntPair",
            Arc::new(|text: &str| {
                let parts: Vec<&str> = text.split(',').collect();
                if parts.len() != 2 {
                    return Err(IdsError::Type("expected a,b".into()));
                }
                let a: i32 = parts[0]
                    .trim()
                    .parse()
                    .map_err(|_| IdsError::Type("a".into()))?;
                let b: i32 = parts[1]
                    .trim()
                    .parse()
                    .map_err(|_| IdsError::Type("b".into()))?;
                let mut out = Vec::with_capacity(8);
                out.extend_from_slice(&a.to_le_bytes());
                out.extend_from_slice(&b.to_le_bytes());
                Ok(out)
            }),
            Arc::new(|bytes: &[u8]| {
                if bytes.len() != 8 {
                    return Err(IdsError::Type("bad length".into()));
                }
                let a = i32::from_le_bytes(bytes[0..4].try_into().unwrap());
                let b = i32::from_le_bytes(bytes[4..8].try_into().unwrap());
                Ok(format!("{a},{b}"))
            }),
        )
    }

    #[test]
    fn text_roundtrip() {
        let t = int_pair_type();
        let v = t.value_from_text("3, 14").unwrap();
        assert_eq!(t.value_to_text(&v).unwrap(), "3,14");
    }

    #[test]
    fn receive_validates() {
        let t = int_pair_type();
        assert!((t.receive)(&[0u8; 8]).is_ok());
        assert!((t.receive)(&[0u8; 3]).is_err());
    }

    #[test]
    fn wrong_type_rejected() {
        let t = int_pair_type();
        assert!(t.value_to_text(&Value::Int(1)).is_err());
        let other = Value::Opaque {
            type_name: "Other".into(),
            bytes: vec![],
        };
        assert!(t.value_to_text(&other).is_err());
    }
}
