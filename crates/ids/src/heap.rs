//! Disk-resident heap tables: slotted pages inside an sbspace large
//! object.
//!
//! Keeping base tables in the same transactional store as the indices
//! means INSERT/DELETE/UPDATE and crash recovery cover the whole
//! database, and sequential-scan I/O is counted by the same buffer-pool
//! statistics the index benchmarks use.

use crate::value::Value;
use crate::vii::RowId;
use crate::{IdsError, Result};
use grt_sbspace::page::{get_u32, get_u64, page_from_slice, put_u32, put_u64, PageBuf, PAGE_SIZE};
use grt_sbspace::{LoHandle, PageSource};

const HEADER_MAGIC: &[u8; 4] = b"HEPH";
const PAGE_MAGIC: &[u8; 4] = b"HEAP";
const PAGE_HDR: usize = 8;
const SLOT_LEN: usize = 4;

/// Maximum encoded row size that fits a page.
pub const MAX_ROW: usize = PAGE_SIZE - PAGE_HDR - SLOT_LEN;

fn rid(page: u32, slot: u16) -> RowId {
    RowId(((page as u64) << 16) | slot as u64)
}

fn unrid(r: RowId) -> (u32, u16) {
    ((r.0 >> 16) as u32, (r.0 & 0xffff) as u16)
}

struct PageView {
    buf: PageBuf,
}

impl PageView {
    fn fresh() -> PageView {
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0..4].copy_from_slice(PAGE_MAGIC);
        // count = 0; free_off = PAGE_SIZE.
        buf[6..8].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        PageView {
            buf: page_from_slice(&buf),
        }
    }

    fn parse(buf: PageBuf) -> Result<PageView> {
        if &buf[0..4] != PAGE_MAGIC {
            return Err(IdsError::Storage(grt_sbspace::SbError::Corrupt(
                "bad heap page magic".into(),
            )));
        }
        Ok(PageView { buf })
    }

    fn count(&self) -> u16 {
        u16::from_le_bytes(self.buf[4..6].try_into().unwrap())
    }

    fn free_off(&self) -> u16 {
        u16::from_le_bytes(self.buf[6..8].try_into().unwrap())
    }

    fn slot(&self, i: u16) -> (u16, u16) {
        let off = PAGE_HDR + SLOT_LEN * i as usize;
        (
            u16::from_le_bytes(self.buf[off..off + 2].try_into().unwrap()),
            u16::from_le_bytes(self.buf[off + 2..off + 4].try_into().unwrap()),
        )
    }

    fn set_slot(&mut self, i: u16, off: u16, len: u16) {
        let s = PAGE_HDR + SLOT_LEN * i as usize;
        self.buf[s..s + 2].copy_from_slice(&off.to_le_bytes());
        self.buf[s + 2..s + 4].copy_from_slice(&len.to_le_bytes());
    }

    fn free_space(&self) -> usize {
        self.free_off() as usize - (PAGE_HDR + SLOT_LEN * (self.count() as usize + 1))
    }

    fn push(&mut self, data: &[u8]) -> Option<u16> {
        if data.len() + SLOT_LEN > self.free_space() + SLOT_LEN
            || self.free_space() < data.len()
            || self.count() == u16::MAX
        {
            return None;
        }
        let slot = self.count();
        let new_off = self.free_off() as usize - data.len();
        self.buf[new_off..new_off + data.len()].copy_from_slice(data);
        self.set_slot(slot, new_off as u16, data.len() as u16);
        self.buf[4..6].copy_from_slice(&(slot + 1).to_le_bytes());
        self.buf[6..8].copy_from_slice(&(new_off as u16).to_le_bytes());
        Some(slot)
    }

    fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.count() {
            return None;
        }
        let (off, len) = self.slot(slot);
        if len == 0 {
            return None; // tombstone
        }
        Some(&self.buf[off as usize..(off + len) as usize])
    }

    fn kill(&mut self, slot: u16) -> bool {
        if slot >= self.count() {
            return false;
        }
        let (off, len) = self.slot(slot);
        if len == 0 {
            return false;
        }
        self.set_slot(slot, off, 0);
        true
    }
}

fn read_header<P: PageSource>(lo: &P) -> Result<(u64, u32)> {
    let buf = lo.read_page(0)?;
    if &buf[0..4] != HEADER_MAGIC {
        return Err(IdsError::Storage(grt_sbspace::SbError::Corrupt(
            "bad heap header magic".into(),
        )));
    }
    Ok((get_u64(buf.as_slice(), 4), get_u32(buf.as_slice(), 12)))
}

fn write_header(lo: &mut LoHandle, rows: u64, hint: u32) -> Result<()> {
    let mut buf = vec![0u8; PAGE_SIZE];
    buf[0..4].copy_from_slice(HEADER_MAGIC);
    put_u64(&mut buf, 4, rows);
    put_u32(&mut buf, 12, hint);
    lo.write_page(0, &page_from_slice(&buf))?;
    Ok(())
}

/// Initialises an empty heap in a fresh large object.
pub fn init(lo: &mut LoHandle) -> Result<()> {
    if lo.page_count() != 0 {
        return Err(IdsError::Semantic("large object not empty".into()));
    }
    let mut buf = vec![0u8; PAGE_SIZE];
    buf[0..4].copy_from_slice(HEADER_MAGIC);
    lo.append_page(&page_from_slice(&buf))?;
    Ok(())
}

/// Number of live rows.
pub fn row_count<P: PageSource>(lo: &P) -> Result<u64> {
    Ok(read_header(lo)?.0)
}

/// Number of data pages (for sequential-scan costing).
pub fn page_count<P: PageSource>(lo: &P) -> u32 {
    lo.page_count().saturating_sub(1)
}

/// Inserts a row, returning its id.
pub fn insert(lo: &mut LoHandle, row: &[Value]) -> Result<RowId> {
    let data = Value::encode_row(row);
    if data.len() > MAX_ROW {
        return Err(IdsError::Semantic(format!(
            "row of {} bytes exceeds page capacity",
            data.len()
        )));
    }
    let (rows, hint) = read_header(lo)?;
    let npages = lo.page_count();
    // Try the hint page first, then append a fresh page.
    if hint >= 1 && hint < npages {
        let mut page = PageView::parse(lo.read_page(hint)?)?;
        if let Some(slot) = page.push(&data) {
            lo.write_page(hint, &page.buf)?;
            write_header(lo, rows + 1, hint)?;
            return Ok(rid(hint, slot));
        }
    }
    let mut page = PageView::fresh();
    let slot = page.push(&data).expect("fresh page fits any legal row");
    let pno = lo.append_page(&page.buf)?;
    write_header(lo, rows + 1, pno)?;
    Ok(rid(pno, slot))
}

/// Fetches a row by id (`None` if deleted or out of range).
pub fn fetch<P: PageSource>(lo: &P, id: RowId) -> Result<Option<Vec<Value>>> {
    let (pno, slot) = unrid(id);
    if pno == 0 || pno >= lo.page_count() {
        return Ok(None);
    }
    let page = PageView::parse(lo.read_page(pno)?)?;
    match page.get(slot) {
        Some(bytes) => Ok(Some(Value::decode_row(bytes)?)),
        None => Ok(None),
    }
}

/// Deletes a row by id; returns whether it existed.
pub fn delete(lo: &mut LoHandle, id: RowId) -> Result<bool> {
    let (pno, slot) = unrid(id);
    if pno == 0 || pno >= lo.page_count() {
        return Ok(false);
    }
    let mut page = PageView::parse(lo.read_page(pno)?)?;
    if !page.kill(slot) {
        return Ok(false);
    }
    lo.write_page(pno, &page.buf)?;
    let (rows, hint) = read_header(lo)?;
    write_header(lo, rows.saturating_sub(1), hint)?;
    Ok(true)
}

/// Replaces a row: tombstones the old id and inserts the new image
/// (rows are immutable in place, as in the paper's update-as-
/// delete-plus-insert model).
pub fn update(lo: &mut LoHandle, id: RowId, new_row: &[Value]) -> Result<RowId> {
    if !delete(lo, id)? {
        return Err(IdsError::NotFound(format!("row {id}")));
    }
    insert(lo, new_row)
}

/// A full-table scan cursor.
pub struct HeapScan {
    page: u32,
    slot: u16,
}

impl HeapScan {
    /// A scan from the first row.
    pub fn new() -> HeapScan {
        HeapScan { page: 1, slot: 0 }
    }

    /// The next live row, or `None` at the end.
    pub fn next<P: PageSource>(&mut self, lo: &P) -> Result<Option<(RowId, Vec<Value>)>> {
        loop {
            if self.page >= lo.page_count() {
                return Ok(None);
            }
            let page = PageView::parse(lo.read_page(self.page)?)?;
            while self.slot < page.count() {
                let slot = self.slot;
                self.slot += 1;
                if let Some(bytes) = page.get(slot) {
                    return Ok(Some((rid(self.page, slot), Value::decode_row(bytes)?)));
                }
            }
            self.page += 1;
            self.slot = 0;
        }
    }
}

impl Default for HeapScan {
    fn default() -> Self {
        HeapScan::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grt_sbspace::{IsolationLevel, LockMode, Sbspace, SbspaceOptions};

    fn fresh_lo() -> LoHandle {
        let sb = Sbspace::mem(SbspaceOptions {
            pool_pages: 4096,
            ..Default::default()
        });
        let txn = sb.begin(IsolationLevel::ReadCommitted);
        let lo = sb.create_lo(&txn).unwrap();
        let h = sb.open_lo(&txn, lo, LockMode::Exclusive).unwrap();
        std::mem::forget(txn);
        std::mem::forget(sb);
        h
    }

    fn row(i: i64) -> Vec<Value> {
        vec![
            Value::Int(i),
            Value::Text(format!("row number {i} with some padding text")),
        ]
    }

    #[test]
    fn insert_fetch_roundtrip() {
        let mut lo = fresh_lo();
        init(&mut lo).unwrap();
        let mut rids = Vec::new();
        for i in 0..500 {
            rids.push(insert(&mut lo, &row(i)).unwrap());
        }
        assert_eq!(row_count(&lo).unwrap(), 500);
        assert!(page_count(&lo) > 1, "rows should span pages");
        for (i, r) in rids.iter().enumerate() {
            assert_eq!(fetch(&lo, *r).unwrap().unwrap(), row(i as i64));
        }
        assert_eq!(fetch(&lo, RowId(u64::MAX)).unwrap(), None);
    }

    #[test]
    fn delete_and_scan_skip_tombstones() {
        let mut lo = fresh_lo();
        init(&mut lo).unwrap();
        let rids: Vec<RowId> = (0..100)
            .map(|i| insert(&mut lo, &row(i)).unwrap())
            .collect();
        for r in rids.iter().step_by(2) {
            assert!(delete(&mut lo, *r).unwrap());
            assert!(!delete(&mut lo, *r).unwrap(), "double delete");
        }
        assert_eq!(row_count(&lo).unwrap(), 50);
        let mut scan = HeapScan::new();
        let mut seen = Vec::new();
        while let Some((_, r)) = scan.next(&lo).unwrap() {
            match &r[0] {
                Value::Int(i) => seen.push(*i),
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(seen, (0..100).filter(|i| i % 2 == 1).collect::<Vec<_>>());
    }

    #[test]
    fn update_moves_rows() {
        let mut lo = fresh_lo();
        init(&mut lo).unwrap();
        let r = insert(&mut lo, &row(1)).unwrap();
        let r2 = update(&mut lo, r, &row(2)).unwrap();
        assert_ne!(r, r2);
        assert_eq!(fetch(&lo, r).unwrap(), None);
        assert_eq!(fetch(&lo, r2).unwrap().unwrap(), row(2));
        assert_eq!(row_count(&lo).unwrap(), 1);
        assert!(update(&mut lo, r, &row(3)).is_err());
    }

    #[test]
    fn oversized_row_rejected() {
        let mut lo = fresh_lo();
        init(&mut lo).unwrap();
        let big = vec![Value::Text("x".repeat(PAGE_SIZE))];
        assert!(matches!(insert(&mut lo, &big), Err(IdsError::Semantic(_))));
    }

    #[test]
    fn empty_heap_scans_nothing() {
        let mut lo = fresh_lo();
        init(&mut lo).unwrap();
        let mut scan = HeapScan::new();
        assert!(scan.next(&lo).unwrap().is_none());
        assert_eq!(row_count(&lo).unwrap(), 0);
    }
}
