//! System catalogs.
//!
//! `CREATE SECONDARY ACCESS_METHOD` "enters access method information
//! into the system catalog table SYSAMS. The CREATE INDEX statement
//! adds index information to the system catalog tables SYSINDICES and
//! SYSFRAGMENTS" (Section 4). These catalogs — plus `SYSTABLES`,
//! `SYSOPCLASSES`, and `SYSPROCEDURES` (held by the UDR registry) — are
//! modelled as engine-resident structures with row-dumps so the
//! reproduction binary can print them.

use crate::value::{DataType, Value};
use crate::vii::AccessMethod;
use crate::{IdsError, Result};
use grt_sbspace::LoId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A table's schema and storage location (SYSTABLES).
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Table name.
    pub name: String,
    /// Column names and types, in order.
    pub columns: Vec<(String, DataType)>,
    /// The large object holding the heap.
    pub lo: LoId,
}

impl TableMeta {
    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|(c, _)| c.eq_ignore_ascii_case(name))
            .ok_or_else(|| IdsError::NotFound(format!("column {name} of table {}", self.name)))
    }

    /// Type of a column by name.
    pub fn column_type(&self, name: &str) -> Result<&DataType> {
        Ok(&self.columns[self.column_index(name)?].1)
    }
}

/// A registered secondary access method (SYSAMS).
#[derive(Clone)]
pub struct AmEntry {
    /// Access-method name (e.g. `grtree_am`).
    pub name: String,
    /// Purpose-function bindings: slot (`am_open`) → registered UDR
    /// name (`grt_open`), exactly as listed in the CREATE statement.
    pub purpose: Vec<(String, String)>,
    /// The `am_sptype` parameter (`"S"` = sbspace).
    pub sptype: String,
    /// The bound implementation (the loaded shared library).
    pub handler: Arc<dyn AccessMethod>,
}

impl AmEntry {
    /// The registered name of a purpose function slot, falling back to
    /// the slot name itself (for tracing).
    pub fn purpose_name(&self, slot: &str) -> String {
        self.purpose
            .iter()
            .find(|(s, _)| s.eq_ignore_ascii_case(slot))
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| slot.to_string())
    }
}

impl std::fmt::Debug for AmEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AmEntry")
            .field("name", &self.name)
            .field("purpose", &self.purpose)
            .finish()
    }
}

/// A virtual index (SYSINDICES).
#[derive(Debug, Clone)]
pub struct IndexMeta {
    /// Index name.
    pub name: String,
    /// Base table.
    pub table: String,
    /// Indexed columns.
    pub columns: Vec<String>,
    /// Access-method name.
    pub access_method: String,
    /// Operator class per the CREATE INDEX statement.
    pub opclass: String,
    /// The storage space named in `IN <space>`.
    pub space: String,
}

/// The engine catalogs.
#[derive(Default)]
pub struct Catalog {
    /// SYSTABLES.
    pub tables: HashMap<String, TableMeta>,
    /// SYSAMS.
    pub ams: HashMap<String, AmEntry>,
    /// SYSINDICES.
    pub indices: HashMap<String, IndexMeta>,
    /// SYSFRAGMENTS: index name → large-object page id. Shared with
    /// access methods through the [`crate::vii::AmContext`].
    pub fragments: Arc<Mutex<HashMap<String, u32>>>,
}

impl Catalog {
    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&TableMeta> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| IdsError::NotFound(format!("table {name}")))
    }

    /// Looks up an access method.
    pub fn am(&self, name: &str) -> Result<&AmEntry> {
        self.ams
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| IdsError::NotFound(format!("access method {name}")))
    }

    /// Looks up an index.
    pub fn index(&self, name: &str) -> Result<&IndexMeta> {
        self.indices
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| IdsError::NotFound(format!("index {name}")))
    }

    /// All indices on a table.
    pub fn indices_of(&self, table: &str) -> Vec<&IndexMeta> {
        let mut v: Vec<&IndexMeta> = self
            .indices
            .values()
            .filter(|i| i.table.eq_ignore_ascii_case(table))
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Dumps a system catalog as (header, rows) for display. Supported:
    /// `sysams`, `sysindices`, `sysfragments`, `systables`.
    pub fn dump(&self, catalog: &str) -> Result<(Vec<String>, Vec<Vec<Value>>)> {
        let text = |s: &str| Value::Text(s.to_string());
        match catalog.to_ascii_lowercase().as_str() {
            "sysams" => {
                let mut rows: Vec<Vec<Value>> = self
                    .ams
                    .values()
                    .map(|a| {
                        let purpose = a
                            .purpose
                            .iter()
                            .map(|(s, n)| format!("{s}={n}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        vec![text(&a.name), text(&purpose), text(&a.sptype)]
                    })
                    .collect();
                rows.sort_by_key(|r| r[0].to_string());
                Ok((
                    vec![
                        "am_name".into(),
                        "purpose_functions".into(),
                        "am_sptype".into(),
                    ],
                    rows,
                ))
            }
            "sysindices" => {
                let mut rows: Vec<Vec<Value>> = self
                    .indices
                    .values()
                    .map(|i| {
                        vec![
                            text(&i.name),
                            text(&i.table),
                            text(&i.columns.join(", ")),
                            text(&i.access_method),
                            text(&i.opclass),
                        ]
                    })
                    .collect();
                rows.sort_by_key(|r| r[0].to_string());
                Ok((
                    vec![
                        "index_name".into(),
                        "table".into(),
                        "columns".into(),
                        "access_method".into(),
                        "opclass".into(),
                    ],
                    rows,
                ))
            }
            "sysfragments" => {
                let frags = self.fragments.lock();
                let mut rows: Vec<Vec<Value>> = frags
                    .iter()
                    .map(|(ix, lo)| vec![text(ix), Value::Int(*lo as i64)])
                    .collect();
                rows.sort_by_key(|r| r[0].to_string());
                Ok((vec!["index_name".into(), "blob_handle".into()], rows))
            }
            "systables" => {
                let mut rows: Vec<Vec<Value>> = self
                    .tables
                    .values()
                    .map(|t| {
                        let cols = t
                            .columns
                            .iter()
                            .map(|(c, ty)| format!("{c} {ty}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        vec![text(&t.name), text(&cols), Value::Int(t.lo.0 as i64)]
                    })
                    .collect();
                rows.sort_by_key(|r| r[0].to_string());
                Ok((
                    vec!["table_name".into(), "columns".into(), "heap_lo".into()],
                    rows,
                ))
            }
            other => Err(IdsError::NotFound(format!("system catalog {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_meta_lookup() {
        let t = TableMeta {
            name: "employees".into(),
            columns: vec![
                ("name".into(), DataType::Text),
                (
                    "time_extent".into(),
                    DataType::Opaque("GRT_TimeExtent_t".into()),
                ),
            ],
            lo: LoId(5),
        };
        assert_eq!(t.column_index("Time_Extent").unwrap(), 1);
        assert!(t.column_index("missing").is_err());
        assert_eq!(t.column_type("NAME").unwrap(), &DataType::Text);
    }

    #[test]
    fn catalog_dumps() {
        let mut c = Catalog::default();
        c.tables.insert(
            "t".into(),
            TableMeta {
                name: "t".into(),
                columns: vec![("a".into(), DataType::Integer)],
                lo: LoId(3),
            },
        );
        c.fragments.lock().insert("ix".into(), 9);
        let (hdr, rows) = c.dump("systables").unwrap();
        assert_eq!(hdr.len(), 3);
        assert_eq!(rows.len(), 1);
        let (_, frows) = c.dump("SYSFRAGMENTS").unwrap();
        assert_eq!(frows[0][1], Value::Int(9));
        assert!(c.dump("sysnothing").is_err());
    }
}
