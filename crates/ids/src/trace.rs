//! The trace facility of Section 6.4.
//!
//! "Trace messages are directed to a special trace file and can be
//! switched on or off selectively using trace classes and trace
//! levels." The engine itself traces every purpose-function invocation
//! in class `"AM"` — which is how the Figure 6 call sequences are
//! regenerated — and DataBlade code can emit its own classes.

use parking_lot::Mutex;
use std::sync::Arc;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Trace class (e.g. `"AM"`, `"GRT"`).
    pub class: String,
    /// Trace level of the message.
    pub level: u8,
    /// The message.
    pub message: String,
}

#[derive(Default)]
struct SinkInner {
    /// Enabled classes with their threshold level.
    enabled: std::collections::HashMap<String, u8>,
    events: Vec<TraceEvent>,
}

/// A shared trace sink (the "trace file").
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Arc<Mutex<SinkInner>>,
}

impl TraceSink {
    /// A fresh sink with everything off.
    pub fn new() -> TraceSink {
        TraceSink::default()
    }

    /// Enables a trace class up to `level`.
    pub fn on(&self, class: &str, level: u8) {
        self.inner.lock().enabled.insert(class.to_string(), level);
    }

    /// Disables a trace class.
    pub fn off(&self, class: &str) {
        self.inner.lock().enabled.remove(class);
    }

    /// Emits a message if the class is enabled at this level.
    pub fn emit(&self, class: &str, level: u8, message: impl Into<String>) {
        let mut inner = self.inner.lock();
        match inner.enabled.get(class) {
            Some(&threshold) if level <= threshold => {
                let message = message.into();
                inner.events.push(TraceEvent {
                    class: class.to_string(),
                    level,
                    message,
                });
            }
            _ => {}
        }
    }

    /// Drains all recorded events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.inner.lock().events)
    }

    /// Copies recorded events without draining.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().events.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_and_levels_filter() {
        let t = TraceSink::new();
        t.emit("AM", 1, "dropped: class off");
        t.on("AM", 2);
        t.emit("AM", 1, "kept");
        t.emit("AM", 2, "kept too");
        t.emit("AM", 3, "dropped: level above threshold");
        t.emit("GRT", 1, "dropped: other class");
        let events = t.take();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.message.starts_with("kept")));
        assert!(t.take().is_empty(), "take drains");
    }

    #[test]
    fn clones_share_the_sink() {
        let t = TraceSink::new();
        t.on("X", 1);
        let t2 = t.clone();
        t2.emit("X", 1, "via clone");
        assert_eq!(t.events().len(), 1);
        t.off("X");
        t2.emit("X", 1, "now off");
        assert_eq!(t.events().len(), 1);
    }
}
