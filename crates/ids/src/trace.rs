//! The trace facility of Section 6.4.
//!
//! "Trace messages are directed to a special trace file and can be
//! switched on or off selectively using trace classes and trace
//! levels." The engine itself traces every purpose-function invocation
//! in class `"AM"` — which is how the Figure 6 call sequences are
//! regenerated — and DataBlade code can emit its own classes.
//!
//! Events are structured: besides class and level each record carries
//! the emitting session and a statement span id (0 when emitted outside
//! a statement), so one shared "trace file" can be filtered per session
//! after the fact. Classes can be enabled globally (`SET TRACE 'AM' TO
//! 1` — every session's events recorded) or per session (`SET TRACE ON
//! 'AM'` — only that session's events recorded). The buffer is a capped
//! ring: the oldest events are dropped first and the drop count is a
//! [`grt_metrics::Counter`] so a snapshot shows the loss.

use grt_metrics::Counter;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Default ring-buffer capacity in events.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Trace class (e.g. `"AM"`, `"GRT"`).
    pub class: String,
    /// Trace level of the message.
    pub level: u8,
    /// Session that emitted the event (0 = engine / no session).
    pub session: u64,
    /// Statement span the event belongs to (0 = outside a statement).
    pub span: u64,
    /// The message.
    pub message: String,
}

#[derive(Default)]
struct SinkInner {
    /// Globally enabled classes with their threshold level.
    enabled: HashMap<String, u8>,
    /// Per-session enabled classes: `(session, class) -> level`.
    session_enabled: HashMap<(u64, String), u8>,
    /// The ring buffer; oldest events at the front.
    events: VecDeque<TraceEvent>,
    capacity: usize,
}

#[derive(Default)]
struct SinkShared {
    inner: Mutex<SinkInner>,
    /// Events evicted from the ring, surfaced as `trace.dropped`.
    dropped: Counter,
    /// Count of installed filter entries (global + per-session),
    /// mirrored outside the lock. Tracing is off in steady state, and
    /// purpose functions emit on every index touch: when this is zero
    /// [`TraceSink::emit`] returns without taking the lock at all.
    filters: AtomicUsize,
}

impl SinkShared {
    fn refresh_filters(&self, inner: &SinkInner) {
        self.filters.store(
            inner.enabled.len() + inner.session_enabled.len(),
            Ordering::Release,
        );
    }
}

/// A shared trace sink (the "trace file"). Clones share the buffer and
/// filters; [`TraceSink::scoped`] returns a clone whose emissions are
/// tagged with a session and span id.
#[derive(Clone, Default)]
pub struct TraceSink {
    shared: Arc<SinkShared>,
    /// Tags stamped on events emitted through this handle. Outside the
    /// `Arc` so scoping is per-handle, not global.
    session: u64,
    span: u64,
}

impl TraceSink {
    /// A fresh sink with everything off and the default capacity.
    pub fn new() -> TraceSink {
        TraceSink::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A fresh sink with an explicit ring-buffer capacity.
    pub fn with_capacity(capacity: usize) -> TraceSink {
        let sink = TraceSink::default();
        sink.shared.inner.lock().capacity = capacity.max(1);
        sink
    }

    /// A clone of this handle whose emissions carry `session`/`span`
    /// tags and are additionally matched against that session's
    /// per-session filters.
    pub fn scoped(&self, session: u64, span: u64) -> TraceSink {
        TraceSink {
            shared: Arc::clone(&self.shared),
            session,
            span,
        }
    }

    /// Enables a trace class up to `level` for every session.
    pub fn on(&self, class: &str, level: u8) {
        let mut inner = self.shared.inner.lock();
        inner.enabled.insert(class.to_string(), level);
        self.shared.refresh_filters(&inner);
    }

    /// Disables a globally enabled trace class.
    pub fn off(&self, class: &str) {
        let mut inner = self.shared.inner.lock();
        inner.enabled.remove(class);
        self.shared.refresh_filters(&inner);
    }

    /// Enables a trace class up to `level` for one session only.
    pub fn on_session(&self, session: u64, class: &str, level: u8) {
        let mut inner = self.shared.inner.lock();
        inner
            .session_enabled
            .insert((session, class.to_string()), level);
        self.shared.refresh_filters(&inner);
    }

    /// Disables a session-scoped trace class; with `None`, every class
    /// that session had enabled.
    pub fn off_session(&self, session: u64, class: Option<&str>) {
        let mut inner = self.shared.inner.lock();
        match class {
            Some(c) => {
                inner.session_enabled.remove(&(session, c.to_string()));
            }
            None => inner.session_enabled.retain(|(s, _), _| *s != session),
        }
        self.shared.refresh_filters(&inner);
    }

    /// True when any filter is installed at all — the cheap gate for
    /// callers that would otherwise format a message only to see it
    /// dropped. A `true` answer still goes through the normal class
    /// and level filtering in [`TraceSink::emit`].
    #[inline]
    pub fn armed(&self) -> bool {
        self.shared.filters.load(Ordering::Acquire) != 0
    }

    /// Emits a lazily-built message: the closure runs only when some
    /// filter is armed. Use on hot paths where the message needs a
    /// `format!`.
    pub fn emit_with(&self, class: &str, level: u8, message: impl FnOnce() -> String) {
        if self.armed() {
            self.emit(class, level, message());
        }
    }

    /// Emits a message if the class is enabled at this level, globally
    /// or for this handle's session.
    pub fn emit(&self, class: &str, level: u8, message: impl Into<String>) {
        if !self.armed() {
            return;
        }
        let mut inner = self.shared.inner.lock();
        let global = inner.enabled.get(class).copied();
        let session = inner
            .session_enabled
            .get(&(self.session, class.to_string()))
            .copied();
        let threshold = match (global, session) {
            (Some(g), Some(s)) => g.max(s),
            (Some(g), None) => g,
            (None, Some(s)) => s,
            (None, None) => return,
        };
        if level > threshold {
            return;
        }
        if inner.capacity == 0 {
            inner.capacity = DEFAULT_TRACE_CAPACITY;
        }
        while inner.events.len() >= inner.capacity {
            inner.events.pop_front();
            self.shared.dropped.inc();
        }
        inner.events.push_back(TraceEvent {
            class: class.to_string(),
            level,
            session: self.session,
            span: self.span,
            message: message.into(),
        });
    }

    /// Drains all recorded events, oldest first.
    pub fn take(&self) -> Vec<TraceEvent> {
        self.shared.inner.lock().events.drain(..).collect()
    }

    /// Copies recorded events without draining.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.shared.inner.lock().events.iter().cloned().collect()
    }

    /// Copies the recorded events of one session without draining.
    pub fn events_for(&self, session: u64) -> Vec<TraceEvent> {
        self.shared
            .inner
            .lock()
            .events
            .iter()
            .filter(|e| e.session == session)
            .cloned()
            .collect()
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.get()
    }

    /// The drop counter itself, for adoption into a metrics registry.
    pub fn dropped_counter(&self) -> Counter {
        self.shared.dropped.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_and_levels_filter() {
        let t = TraceSink::new();
        t.emit("AM", 1, "dropped: class off");
        t.on("AM", 2);
        t.emit("AM", 1, "kept");
        t.emit("AM", 2, "kept too");
        t.emit("AM", 3, "dropped: level above threshold");
        t.emit("GRT", 1, "dropped: other class");
        let events = t.take();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.message.starts_with("kept")));
        assert!(t.take().is_empty(), "take drains");
    }

    #[test]
    fn clones_share_the_sink() {
        let t = TraceSink::new();
        t.on("X", 1);
        let t2 = t.clone();
        t2.emit("X", 1, "via clone");
        assert_eq!(t.events().len(), 1);
        t.off("X");
        t2.emit("X", 1, "now off");
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn ring_buffer_caps_and_counts_drops() {
        let t = TraceSink::with_capacity(3);
        t.on("X", 1);
        for i in 0..5 {
            t.emit("X", 1, format!("m{i}"));
        }
        let events = t.events();
        assert_eq!(events.len(), 3, "capped at capacity");
        assert_eq!(events[0].message, "m2", "oldest evicted first");
        assert_eq!(events[2].message, "m4");
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn session_scoped_filters_and_tags() {
        let t = TraceSink::new();
        let s7 = t.scoped(7, 100);
        let s9 = t.scoped(9, 200);
        // Only session 7 enables the class.
        t.on_session(7, "AM", 1);
        s7.emit("AM", 1, "session seven");
        s9.emit("AM", 1, "session nine: filtered");
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].session, 7);
        assert_eq!(events[0].span, 100);
        // A global enable records everyone; per-session events separate.
        t.on("AM", 1);
        s9.emit("AM", 1, "session nine: global now");
        assert_eq!(t.events_for(9).len(), 1);
        assert_eq!(t.events_for(7).len(), 1);
        // Session disable leaves the global filter in force.
        t.off_session(7, None);
        s7.emit("AM", 1, "still recorded via global");
        assert_eq!(t.events_for(7).len(), 2);
    }

    #[test]
    fn emit_with_builds_messages_only_when_armed() {
        let t = TraceSink::new();
        assert!(!t.armed(), "fresh sink has no filters");
        t.emit_with("AM", 1, || panic!("message built with tracing off"));
        // Arming any class (even another one) makes the closure run;
        // class filtering still applies to what gets recorded.
        t.on("GRT", 1);
        assert!(t.armed());
        t.emit_with("AM", 1, || "filtered by class".into());
        t.emit_with("GRT", 1, || "recorded".into());
        let events = t.take();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].message, "recorded");
        // Session filters arm the sink too; removing the last filter
        // disarms it.
        t.off("GRT");
        t.on_session(3, "AM", 1);
        assert!(t.armed());
        t.off_session(3, None);
        assert!(!t.armed());
    }

    #[test]
    fn untagged_handle_has_session_zero() {
        let t = TraceSink::new();
        t.on("E", 1);
        t.emit("E", 1, "engine event");
        let e = &t.events()[0];
        assert_eq!((e.session, e.span), (0, 0));
    }
}
