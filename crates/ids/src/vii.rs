//! The Virtual-Index Interface: access-method purpose functions and
//! descriptors.
//!
//! This is the contract of the paper's Table 2. A DataBlade provides an
//! implementation of [`AccessMethod`]; the engine drives it through the
//! call sequences of Figure 6 (tracing each call in class `"AM"`). The
//! descriptors mirror the paper's: the *index descriptor* carries the
//! index identity plus a DataBlade-private slot (where the GR-tree
//! blade keeps its `Tree` object), the *scan descriptor* carries the
//! qualification and the blade's `Cursor`, and the *qualification
//! descriptor* is restricted to **single-column** predicates
//! (`f(column, constant)`, `f(constant, column)`, `f(column)`) — the
//! restriction of Section 5.1.

use crate::session::Session;
use crate::trace::TraceSink;
use crate::value::{DataType, Value};
use crate::{IdsError, Result};
use grt_sbspace::{Sbspace, Txn};
use grt_temporal::{Clock, MockClock};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// A row identifier in a heap table (page and slot packed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u64);

impl std::fmt::Display for RowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rid{}", self.0)
    }
}

/// A single-column predicate: the only shape a qualification descriptor
/// can carry.
#[derive(Debug, Clone, PartialEq)]
pub struct SimpleQual {
    /// Strategy-function name.
    pub func: String,
    /// The indexed column's name.
    pub column: String,
    /// The constant argument, if any (`f(column)` has none).
    pub constant: Option<Value>,
    /// True for the `f(constant, column)` argument order.
    pub commuted: bool,
}

/// A boolean combination of simple predicates (the paper's "complex
/// qualification containing several strategy functions separated by
/// ANDs or ORs").
#[derive(Debug, Clone, PartialEq)]
pub enum QualNode {
    /// A single strategy-function predicate.
    Simple(SimpleQual),
    /// All children must hold.
    And(Vec<QualNode>),
    /// At least one child must hold.
    Or(Vec<QualNode>),
}

impl QualNode {
    /// Every simple predicate in the tree, left to right.
    pub fn leaves(&self) -> Vec<&SimpleQual> {
        match self {
            QualNode::Simple(s) => vec![s],
            QualNode::And(cs) | QualNode::Or(cs) => cs.iter().flat_map(QualNode::leaves).collect(),
        }
    }

    /// Evaluates the tree given a per-leaf oracle.
    pub fn eval(&self, leaf: &mut impl FnMut(&SimpleQual) -> Result<bool>) -> Result<bool> {
        match self {
            QualNode::Simple(s) => leaf(s),
            QualNode::And(cs) => {
                for c in cs {
                    if !c.eval(leaf)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            QualNode::Or(cs) => {
                for c in cs {
                    if c.eval(leaf)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }
}

/// The qualification descriptor passed to `am_beginscan`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QualDescriptor {
    /// The pushed-down predicate tree; `None` scans everything.
    pub root: Option<QualNode>,
}

/// The index descriptor ("td" in the paper's Table 5): identity,
/// schema, parameters, and the DataBlade's private state.
pub struct IndexDescriptor {
    /// Index name.
    pub index_name: String,
    /// Base table name.
    pub table: String,
    /// Indexed column names.
    pub columns: Vec<String>,
    /// Indexed column types.
    pub column_types: Vec<DataType>,
    /// Operator class in force.
    pub opclass: String,
    /// Access-method parameters (e.g. `am_sptype`).
    pub params: HashMap<String, String>,
    /// DataBlade-private state (the paper's "pointer to object Tree").
    pub user_data: Mutex<Option<Box<dyn Any + Send>>>,
}

impl IndexDescriptor {
    /// Creates a descriptor (engine-internal and tests).
    pub fn new(
        index_name: &str,
        table: &str,
        columns: Vec<String>,
        column_types: Vec<DataType>,
        opclass: &str,
    ) -> IndexDescriptor {
        IndexDescriptor {
            index_name: index_name.to_string(),
            table: table.to_string(),
            columns,
            column_types,
            opclass: opclass.to_string(),
            params: HashMap::new(),
            user_data: Mutex::new(None),
        }
    }
}

/// The scan descriptor ("sd"): qualification plus the blade's cursor.
pub struct ScanDescriptor {
    /// The pushed qualification.
    pub qual: QualDescriptor,
    /// DataBlade-private scan state (the paper's `Cursor` object).
    pub user_data: Option<Box<dyn Any + Send>>,
}

impl ScanDescriptor {
    /// A scan over the given qualification.
    pub fn new(qual: QualDescriptor) -> ScanDescriptor {
        ScanDescriptor {
            qual,
            user_data: None,
        }
    }
}

/// The server facilities a purpose function may use: storage, the
/// current transaction, the clock, session named memory, the fragment
/// catalog, and tracing.
pub struct AmContext<'a> {
    /// The sbspace the virtual indices live in.
    pub space: Sbspace,
    /// The transaction this statement runs under.
    pub txn: &'a Txn,
    /// When set, the statement is a snapshot read: purpose functions
    /// should traverse this frozen committed view instead of opening
    /// LOs (and taking LO-level locks) through `space`. Only access
    /// methods reporting [`AccessMethod::am_supports_snapshot`] ever
    /// see it.
    pub snapshot: Option<Arc<grt_sbspace::SpaceSnapshot>>,
    /// The server clock (never read directly by well-behaved blades —
    /// they cache per statement/transaction, Section 5.4).
    pub clock: Arc<dyn Clock>,
    /// The session (named memory lives here).
    pub session: Arc<Session>,
    /// SYSFRAGMENTS: index name → large-object page id ("the table
    /// associated with the access method" of the paper's Table 5).
    pub fragments: Arc<Mutex<HashMap<String, u32>>>,
    /// The trace sink.
    pub trace: TraceSink,
}

impl<'a> AmContext<'a> {
    /// A throwaway context over a fresh in-memory space (tests).
    pub fn for_tests() -> AmContext<'static> {
        let space = Sbspace::mem(Default::default());
        let txn = Box::leak(Box::new(space.begin(Default::default())));
        AmContext {
            space,
            txn,
            snapshot: None,
            clock: Arc::new(MockClock::default()),
            session: Arc::new(Session::new(0)),
            fragments: Arc::new(Mutex::new(HashMap::new())),
            trace: TraceSink::new(),
        }
    }
}

/// The secondary-access-method purpose functions (the paper's Table 2).
/// Only `am_getnext` is mandatory; the engine skips optional functions
/// a method does not implement.
#[allow(unused_variables)]
pub trait AccessMethod: Send + Sync {
    /// Creating an index (`CREATE INDEX`).
    fn am_create(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<()> {
        Ok(())
    }

    /// Dropping an index (`DROP INDEX`).
    fn am_drop(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<()> {
        Ok(())
    }

    /// Opening an index for a statement.
    fn am_open(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<()> {
        Ok(())
    }

    /// Closing an index at statement end.
    fn am_close(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<()> {
        Ok(())
    }

    /// Starting a scan with a qualification.
    fn am_beginscan(
        &self,
        idx: &IndexDescriptor,
        scan: &mut ScanDescriptor,
        ctx: &AmContext,
    ) -> Result<()> {
        Ok(())
    }

    /// Restarting a scan from the beginning.
    fn am_rescan(
        &self,
        idx: &IndexDescriptor,
        scan: &mut ScanDescriptor,
        ctx: &AmContext,
    ) -> Result<()> {
        Ok(())
    }

    /// Fetching the next qualifying row: rowid plus the indexed fields
    /// ("retrowid" and "retrow" of the paper's Table 5). Mandatory.
    fn am_getnext(
        &self,
        idx: &IndexDescriptor,
        scan: &mut ScanDescriptor,
        ctx: &AmContext,
    ) -> Result<Option<(RowId, Vec<Value>)>>;

    /// Fetching up to `max_rows` qualifying rows in one call, cutting
    /// the dynamic-dispatch round trips of a scan by the batch factor.
    /// Optional: the default delegates to repeated [`am_getnext`]
    /// calls, so third-party access methods are untouched.
    ///
    /// Contract: a batch shorter than `max_rows` means the scan is
    /// exhausted (the executor stops calling). Rows already handed out
    /// must not be re-emitted by later batches, even if the underlying
    /// structure reorganized between calls (e.g. an R-tree condense
    /// forced a cursor restart mid-DELETE) — same rules as repeated
    /// `am_getnext`.
    ///
    /// [`am_getnext`]: AccessMethod::am_getnext
    fn am_getnext_batch(
        &self,
        idx: &IndexDescriptor,
        scan: &mut ScanDescriptor,
        max_rows: usize,
        ctx: &AmContext,
    ) -> Result<Vec<(RowId, Vec<Value>)>> {
        let mut out = Vec::with_capacity(max_rows.min(64));
        while out.len() < max_rows {
            match self.am_getnext(idx, scan, ctx)? {
                Some(hit) => out.push(hit),
                None => break,
            }
        }
        Ok(out)
    }

    /// Ending a scan.
    fn am_endscan(
        &self,
        idx: &IndexDescriptor,
        scan: &mut ScanDescriptor,
        ctx: &AmContext,
    ) -> Result<()> {
        Ok(())
    }

    /// Inserting a row's indexed fields.
    fn am_insert(
        &self,
        idx: &IndexDescriptor,
        row: &[Value],
        rowid: RowId,
        ctx: &AmContext,
    ) -> Result<()> {
        Err(IdsError::AccessMethod("am_insert not provided".into()))
    }

    /// Bulk-building the index over an already-populated table.
    /// `CREATE INDEX` offers the full row set once; an access method
    /// that can pack a tree directly (sort-tile-recursive loading, say)
    /// returns `Ok(true)`. The default declines, and the engine falls
    /// back to one `am_insert` call per row.
    fn am_build(
        &self,
        idx: &IndexDescriptor,
        rows: &[(RowId, Vec<Value>)],
        ctx: &AmContext,
    ) -> Result<bool> {
        Ok(false)
    }

    /// Deleting a row's indexed fields.
    fn am_delete(
        &self,
        idx: &IndexDescriptor,
        row: &[Value],
        rowid: RowId,
        ctx: &AmContext,
    ) -> Result<()> {
        Err(IdsError::AccessMethod("am_delete not provided".into()))
    }

    /// Updating a row (default: delete old, insert new — the paper's
    /// `grt_update` does exactly this).
    fn am_update(
        &self,
        idx: &IndexDescriptor,
        old_row: &[Value],
        old_rowid: RowId,
        new_row: &[Value],
        new_rowid: RowId,
        ctx: &AmContext,
    ) -> Result<()> {
        self.am_delete(idx, old_row, old_rowid, ctx)?;
        self.am_insert(idx, new_row, new_rowid, ctx)
    }

    /// Estimated cost of a scan with this qualification, in page reads
    /// (the planner compares this against a sequential scan).
    fn am_scancost(
        &self,
        idx: &IndexDescriptor,
        qual: &QualDescriptor,
        ctx: &AmContext,
    ) -> Result<f64> {
        Ok(f64::MAX)
    }

    /// Refreshes optimizer statistics; returns a human-readable summary.
    fn am_stats(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<String> {
        Ok(String::new())
    }

    /// Verifies index consistency.
    fn am_check(&self, idx: &IndexDescriptor, ctx: &AmContext) -> Result<()> {
        Ok(())
    }

    /// True when the method's read-side purpose functions honour
    /// [`AmContext::snapshot`] (traversing the frozen view without
    /// LO-level locks). The engine only routes a statement through the
    /// snapshot path when every index on the table opts in; the default
    /// keeps third-party blades on the locked path.
    fn am_supports_snapshot(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qual_tree_eval_and_leaves() {
        let leaf = |f: &str| {
            QualNode::Simple(SimpleQual {
                func: f.into(),
                column: "c".into(),
                constant: Some(Value::Int(1)),
                commuted: false,
            })
        };
        let tree = QualNode::Or(vec![QualNode::And(vec![leaf("a"), leaf("b")]), leaf("c")]);
        assert_eq!(
            tree.leaves()
                .iter()
                .map(|s| s.func.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
        // a=true, b=false, c=false -> false; then c=true -> true.
        let mut oracle = |s: &SimpleQual| Ok(s.func == "a");
        assert!(!tree.eval(&mut oracle).unwrap());
        let mut oracle2 = |s: &SimpleQual| Ok(s.func == "a" || s.func == "c");
        assert!(tree.eval(&mut oracle2).unwrap());
    }

    #[test]
    fn default_purpose_functions() {
        struct Dummy;
        impl AccessMethod for Dummy {
            fn am_getnext(
                &self,
                _idx: &IndexDescriptor,
                _scan: &mut ScanDescriptor,
                _ctx: &AmContext,
            ) -> Result<Option<(RowId, Vec<Value>)>> {
                Ok(None)
            }
        }
        let ctx = AmContext::for_tests();
        let idx = IndexDescriptor::new("i", "t", vec!["c".into()], vec![DataType::Integer], "oc");
        let am = Dummy;
        am.am_create(&idx, &ctx).unwrap();
        let mut scan = ScanDescriptor::new(QualDescriptor::default());
        am.am_beginscan(&idx, &mut scan, &ctx).unwrap();
        assert!(am.am_getnext(&idx, &mut scan, &ctx).unwrap().is_none());
        assert!(am.am_insert(&idx, &[], RowId(0), &ctx).is_err());
        assert!(am.am_scancost(&idx, &scan.qual, &ctx).unwrap() > 1e300);
    }
}
