//! Sessions and server named memory.
//!
//! Section 5.4: "The obtained current-time value can be stored in the
//! named memory allocated from a server and identified by the session
//! id, under which the transaction is running. A transaction-end
//! callback should be registered to free the allocated memory." This
//! module provides exactly that: named allocations tagged with a
//! duration; the engine clears `PerStatement` entries after each
//! statement and `PerTransaction` entries from its transaction-end
//! callback.

use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Memory durations (a subset of the DataBlade API's `MI_...`
/// durations relevant to the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemDuration {
    /// Freed when the current statement completes.
    PerStatement,
    /// Freed at transaction end (commit or abort).
    PerTransaction,
    /// Freed when the session disconnects.
    PerSession,
}

type NamedCell = Arc<dyn Any + Send + Sync>;

#[derive(Default)]
struct NamedMemory {
    cells: HashMap<String, (MemDuration, NamedCell)>,
}

/// An opaque copy of the named cells of one duration, taken with
/// [`Session::snapshot_duration`] and put back with
/// [`Session::restore`]. The engine's deadlock-retry path uses this to
/// carry `PerTransaction` memory (e.g. the Section 5.4 current-time
/// value) across the victim abort into the retried attempt.
pub struct DurationSnapshot {
    duration: MemDuration,
    cells: Vec<(String, NamedCell)>,
}

/// A client session: identity plus named memory.
pub struct Session {
    id: u64,
    memory: Mutex<NamedMemory>,
}

impl Session {
    /// Creates a session with the given id (engine-internal).
    pub(crate) fn new(id: u64) -> Session {
        Session {
            id,
            memory: Mutex::new(NamedMemory::default()),
        }
    }

    /// The session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Allocates (or replaces) a named cell with the given duration.
    pub fn put_named<T: Any + Send + Sync>(&self, name: &str, duration: MemDuration, value: T) {
        self.memory
            .lock()
            .cells
            .insert(name.to_string(), (duration, Arc::new(value)));
    }

    /// Reads a named cell, if present and of the expected type.
    pub fn get_named<T: Any + Send + Sync + Clone>(&self, name: &str) -> Option<T> {
        self.memory
            .lock()
            .cells
            .get(name)
            .and_then(|(_, cell)| cell.downcast_ref::<T>().cloned())
    }

    /// Frees a named cell explicitly.
    pub fn free_named(&self, name: &str) -> bool {
        self.memory.lock().cells.remove(name).is_some()
    }

    /// Frees every cell with the given duration (the engine calls this
    /// at statement end / transaction end).
    pub fn clear_duration(&self, duration: MemDuration) {
        self.memory.lock().cells.retain(|_, (d, _)| *d != duration);
    }

    /// Copies every cell with the given duration (cheap: cells are
    /// shared by `Arc`).
    pub fn snapshot_duration(&self, duration: MemDuration) -> DurationSnapshot {
        DurationSnapshot {
            duration,
            cells: self
                .memory
                .lock()
                .cells
                .iter()
                .filter(|(_, (d, _))| *d == duration)
                .map(|(name, (_, cell))| (name.clone(), Arc::clone(cell)))
                .collect(),
        }
    }

    /// Puts a snapshot's cells back under their original duration,
    /// replacing any same-named cells.
    pub fn restore(&self, snapshot: DurationSnapshot) {
        let mut mem = self.memory.lock();
        for (name, cell) in snapshot.cells {
            mem.cells.insert(name, (snapshot.duration, cell));
        }
    }

    /// Number of live named cells (test hook).
    pub fn named_count(&self) -> usize {
        self.memory.lock().cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_memory_roundtrip() {
        let s = Session::new(7);
        assert_eq!(s.id(), 7);
        s.put_named("ct", MemDuration::PerTransaction, 42i32);
        assert_eq!(s.get_named::<i32>("ct"), Some(42));
        // Wrong type reads as absent.
        assert_eq!(s.get_named::<u64>("ct"), None);
        assert!(s.free_named("ct"));
        assert!(!s.free_named("ct"));
    }

    #[test]
    fn durations_clear_selectively() {
        let s = Session::new(1);
        s.put_named("a", MemDuration::PerStatement, 1i32);
        s.put_named("b", MemDuration::PerTransaction, 2i32);
        s.put_named("c", MemDuration::PerSession, 3i32);
        s.clear_duration(MemDuration::PerStatement);
        assert_eq!(s.get_named::<i32>("a"), None);
        assert_eq!(s.get_named::<i32>("b"), Some(2));
        s.clear_duration(MemDuration::PerTransaction);
        assert_eq!(s.get_named::<i32>("b"), None);
        assert_eq!(s.get_named::<i32>("c"), Some(3));
        assert_eq!(s.named_count(), 1);
    }

    #[test]
    fn snapshot_survives_a_clear() {
        let s = Session::new(1);
        s.put_named("ct", MemDuration::PerTransaction, 42i32);
        s.put_named("tmp", MemDuration::PerStatement, 7i32);
        let snap = s.snapshot_duration(MemDuration::PerTransaction);
        // The transaction aborts: its memory is cleared...
        s.clear_duration(MemDuration::PerTransaction);
        s.clear_duration(MemDuration::PerStatement);
        assert_eq!(s.get_named::<i32>("ct"), None);
        // ...and the retry restores it, per-statement cells excluded.
        s.restore(snap);
        assert_eq!(s.get_named::<i32>("ct"), Some(42));
        assert_eq!(s.get_named::<i32>("tmp"), None);
        // The restored cell keeps its duration.
        s.clear_duration(MemDuration::PerTransaction);
        assert_eq!(s.get_named::<i32>("ct"), None);
    }
}
