//! Operator classes (Section 4, step 4).
//!
//! An operator class binds a set of *strategy* functions (usable in
//! WHERE clauses; their presence is what lets the optimizer consider a
//! virtual index) and *support* functions (internal to the access
//! method) to a secondary access method. Several operator classes can
//! exist for one access method (the paper's Figure 7), and one can be
//! the method's default.

use crate::{IdsError, Result};
use std::collections::HashMap;

/// A registered operator class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpClass {
    /// Class name.
    pub name: String,
    /// The access method it belongs to.
    pub access_method: String,
    /// Strategy-function names (WHERE-clause interface).
    pub strategies: Vec<String>,
    /// Support-function names (internal interface).
    pub supports: Vec<String>,
}

impl OpClass {
    /// True when `func` is declared as a strategy function.
    pub fn has_strategy(&self, func: &str) -> bool {
        self.strategies.iter().any(|s| s.eq_ignore_ascii_case(func))
    }
}

/// The operator-class registry.
#[derive(Debug, Default)]
pub struct OpClassRegistry {
    classes: HashMap<String, OpClass>,
    /// Default class per access method.
    defaults: HashMap<String, String>,
}

impl OpClassRegistry {
    /// Registers a class (`CREATE OPCLASS`). The first class created
    /// for an access method becomes its default unless overridden.
    pub fn create(&mut self, class: OpClass) -> Result<()> {
        let key = class.name.to_ascii_lowercase();
        if self.classes.contains_key(&key) {
            return Err(IdsError::Duplicate(format!("opclass {}", class.name)));
        }
        let am_key = class.access_method.to_ascii_lowercase();
        self.defaults
            .entry(am_key)
            .or_insert_with(|| class.name.clone());
        self.classes.insert(key, class);
        Ok(())
    }

    /// Declares a class as its access method's default.
    pub fn set_default(&mut self, class_name: &str) -> Result<()> {
        let class = self.get(class_name)?.clone();
        self.defaults
            .insert(class.access_method.to_ascii_lowercase(), class.name);
        Ok(())
    }

    /// Extends an existing class with more strategy/support functions
    /// (the paper's "the existing operator class is extended").
    pub fn extend(
        &mut self,
        class_name: &str,
        strategies: Vec<String>,
        supports: Vec<String>,
    ) -> Result<()> {
        let class = self
            .classes
            .get_mut(&class_name.to_ascii_lowercase())
            .ok_or_else(|| IdsError::NotFound(format!("opclass {class_name}")))?;
        class.strategies.extend(strategies);
        class.supports.extend(supports);
        Ok(())
    }

    /// Looks a class up by name.
    pub fn get(&self, name: &str) -> Result<&OpClass> {
        self.classes
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| IdsError::NotFound(format!("opclass {name}")))
    }

    /// The default class of an access method, if any.
    pub fn default_for(&self, access_method: &str) -> Option<&OpClass> {
        self.defaults
            .get(&access_method.to_ascii_lowercase())
            .and_then(|name| self.classes.get(&name.to_ascii_lowercase()))
    }

    /// Drops a class.
    pub fn drop_class(&mut self, name: &str) -> Result<()> {
        let class = self
            .classes
            .remove(&name.to_ascii_lowercase())
            .ok_or_else(|| IdsError::NotFound(format!("opclass {name}")))?;
        let am_key = class.access_method.to_ascii_lowercase();
        if self.defaults.get(&am_key) == Some(&class.name) {
            self.defaults.remove(&am_key);
        }
        Ok(())
    }

    /// All classes of one access method (the Figure 7 association).
    pub fn classes_of(&self, access_method: &str) -> Vec<&OpClass> {
        let mut v: Vec<&OpClass> = self
            .classes
            .values()
            .filter(|c| c.access_method.eq_ignore_ascii_case(access_method))
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// All classes (catalog dump).
    pub fn all(&self) -> Vec<&OpClass> {
        let mut v: Vec<&OpClass> = self.classes.values().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grt_class() -> OpClass {
        OpClass {
            name: "grt_opclass".into(),
            access_method: "grtree_am".into(),
            strategies: vec![
                "grt_overlap".into(),
                "grt_contains".into(),
                "grt_containedin".into(),
                "grt_equal".into(),
            ],
            supports: vec![
                "grt_union".into(),
                "grt_size".into(),
                "grt_intersection".into(),
            ],
        }
    }

    #[test]
    fn create_and_lookup() {
        let mut reg = OpClassRegistry::default();
        reg.create(grt_class()).unwrap();
        let c = reg.get("GRT_OPCLASS").unwrap();
        assert!(c.has_strategy("GRT_OVERLAP"));
        assert!(!c.has_strategy("grt_union"));
        assert!(matches!(
            reg.create(grt_class()),
            Err(IdsError::Duplicate(_))
        ));
    }

    #[test]
    fn first_class_is_default_until_overridden() {
        let mut reg = OpClassRegistry::default();
        reg.create(grt_class()).unwrap();
        reg.create(OpClass {
            name: "grt_alt".into(),
            access_method: "grtree_am".into(),
            strategies: vec!["grt_neighbour".into()],
            supports: vec![],
        })
        .unwrap();
        assert_eq!(reg.default_for("grtree_am").unwrap().name, "grt_opclass");
        reg.set_default("grt_alt").unwrap();
        assert_eq!(reg.default_for("GRTREE_AM").unwrap().name, "grt_alt");
        assert_eq!(reg.classes_of("grtree_am").len(), 2);
    }

    #[test]
    fn extend_adds_functions() {
        let mut reg = OpClassRegistry::default();
        reg.create(grt_class()).unwrap();
        reg.extend("grt_opclass", vec!["grt_meets".into()], vec![])
            .unwrap();
        assert!(reg.get("grt_opclass").unwrap().has_strategy("grt_meets"));
    }

    #[test]
    fn drop_clears_default() {
        let mut reg = OpClassRegistry::default();
        reg.create(grt_class()).unwrap();
        reg.drop_class("grt_opclass").unwrap();
        assert!(reg.default_for("grtree_am").is_none());
        assert!(reg.get("grt_opclass").is_err());
    }
}
