//! The SQL dialect: lexer, AST, and recursive-descent parser.
//!
//! Covers every statement the paper quotes (`CREATE FUNCTION ...
//! EXTERNAL NAME ... LANGUAGE C`, `CREATE SECONDARY ACCESS_METHOD`,
//! `CREATE OPCLASS ... STRATEGIES(...) SUPPORT(...)`, `CREATE INDEX ...
//! USING ... IN ...`, and the DML around them), plus the small amount of
//! session control the tests need (`BEGIN WORK`, `COMMIT WORK`,
//! `ROLLBACK WORK`, `SET ISOLATION`, `SET TRACE`, `CHECK INDEX`,
//! `UPDATE STATISTICS`).

use crate::value::Value;
use crate::{IdsError, Result};

/// A literal value in SQL text.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Integer literal.
    Int(i64),
    /// String literal (single- or double-quoted).
    Str(String),
    /// TRUE / FALSE.
    Bool(bool),
    /// NULL.
    Null,
}

/// A scalar or boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal.
    Literal(Lit),
    /// A column reference.
    Column(String),
    /// A function call `f(a, b, ...)`.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// A comparison `a op b` with `op` one of `= != < <= > >=`.
    Cmp {
        /// Operator text.
        op: String,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Conjunction.
    And(Vec<Expr>),
    /// Disjunction.
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// A positional parameter `?` (0-based, in textual order). Appears
    /// in prepared statements and in plan-cache templates; it must be
    /// bound to a value before execution.
    Param(usize),
    /// A parameter bound to a concrete value. Never produced by the
    /// parser: the engine substitutes these for [`Expr::Param`] when a
    /// compiled statement is executed.
    Bound(Value),
}

/// The selected column list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectCols {
    /// `SELECT *`
    Star,
    /// Named columns.
    Named(Vec<String>),
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type, ...)`
    CreateTable {
        name: String,
        columns: Vec<(String, String)>,
    },
    /// `DROP TABLE name`
    DropTable { name: String },
    /// `CREATE FUNCTION name(type, ...) RETURNING type EXTERNAL NAME '...' LANGUAGE C`
    CreateFunction {
        name: String,
        args: Vec<String>,
        returns: String,
        external: String,
    },
    /// `DROP FUNCTION name`
    DropFunction { name: String },
    /// `CREATE SECONDARY ACCESS_METHOD name (am_x = f, ..., am_sptype = "S")`
    CreateAccessMethod {
        name: String,
        bindings: Vec<(String, String)>,
    },
    /// `CREATE OPCLASS name FOR am STRATEGIES(f, ...) SUPPORT(g, ...)`
    CreateOpClass {
        name: String,
        access_method: String,
        strategies: Vec<String>,
        supports: Vec<String>,
    },
    /// `CREATE INDEX name ON table(col [opclass], ...) USING am [IN space]`
    CreateIndex {
        name: String,
        table: String,
        columns: Vec<(String, Option<String>)>,
        using: String,
        space: Option<String>,
    },
    /// `DROP INDEX name`
    DropIndex { name: String },
    /// `DROP SECONDARY ACCESS_METHOD name`
    DropAccessMethod { name: String },
    /// `DROP OPCLASS name`
    DropOpClass { name: String },
    /// `INSERT INTO table VALUES (expr, ...)`
    Insert { table: String, values: Vec<Expr> },
    /// `SELECT cols FROM table [WHERE expr]`
    Select {
        columns: SelectCols,
        table: String,
        where_clause: Option<Expr>,
    },
    /// `DELETE FROM table [WHERE expr]`
    Delete {
        table: String,
        where_clause: Option<Expr>,
    },
    /// `UPDATE table SET col = expr, ... [WHERE expr]`
    Update {
        table: String,
        sets: Vec<(String, Expr)>,
        where_clause: Option<Expr>,
    },
    /// `BEGIN [WORK]`
    Begin,
    /// `COMMIT [WORK]`
    Commit,
    /// `ROLLBACK [WORK]`
    Rollback,
    /// `SET ISOLATION TO <level>`
    SetIsolation { level: String },
    /// `SET TRACE 'class' TO <level>` / `SET TRACE 'class' OFF` switch
    /// a class globally; `SET TRACE ON 'class' [LEVEL n]` and
    /// `SET TRACE OFF ['class']` do so for the issuing session only.
    SetTrace {
        /// `None` only for `SET TRACE OFF` with no class, which clears
        /// every class the session had enabled.
        class: Option<String>,
        /// `None` disables.
        level: Option<u8>,
        /// Session-scoped (`ON`/`OFF` forms) vs global (`TO` form).
        session: bool,
    },
    /// `SET EXPLAIN ON|OFF` — planner decisions traced for the session.
    SetExplain { on: bool },
    /// `SET PARALLEL [TO] n` — session-scoped parallel scan degree.
    SetParallel { workers: u32 },
    /// `CHECK INDEX name` (runs `am_check`)
    CheckIndex { name: String },
    /// `UPDATE STATISTICS FOR INDEX name` (runs `am_stats`)
    UpdateStatistics { index: String },
    /// `LOAD FROM 'file' INSERT INTO table` — bulk load through the
    /// text-file *import* support functions (Section 6.3, item 3).
    Load { path: String, table: String },
    /// `ALTER FUNCTION f NEGATOR g` / `ALTER FUNCTION f COMMUTATOR g` —
    /// the only inter-routine relationships Informix can record
    /// (Section 5.2).
    AlterFunction {
        name: String,
        negator: Option<String>,
        commutator: Option<String>,
    },
    /// `PREPARE name FROM '<sql>'` — compile a statement once; `?`
    /// placeholders become typed parameter slots.
    Prepare { name: String, sql: String },
    /// `EXECUTE name [USING v1, v2, ...]` — run a prepared statement
    /// with the given parameter values.
    Execute { name: String, using: Vec<Expr> },
    /// `DEALLOCATE [PREPARE] name` — drop a prepared statement.
    Deallocate { name: String },
}

/// Calls `f` on every expression (recursively) in a statement.
fn visit_exprs(stmt: &Statement, f: &mut impl FnMut(&Expr)) {
    fn walk(e: &Expr, f: &mut impl FnMut(&Expr)) {
        f(e);
        match e {
            Expr::Call { args, .. } => args.iter().for_each(|a| walk(a, f)),
            Expr::Cmp { left, right, .. } => {
                walk(left, f);
                walk(right, f);
            }
            Expr::And(parts) | Expr::Or(parts) => parts.iter().for_each(|p| walk(p, f)),
            Expr::Not(inner) => walk(inner, f),
            Expr::Literal(_) | Expr::Column(_) | Expr::Param(_) | Expr::Bound(_) => {}
        }
    }
    match stmt {
        Statement::Insert { values, .. } => values.iter().for_each(|v| walk(v, f)),
        Statement::Select { where_clause, .. } | Statement::Delete { where_clause, .. } => {
            if let Some(w) = where_clause {
                walk(w, f);
            }
        }
        Statement::Update {
            sets, where_clause, ..
        } => {
            sets.iter().for_each(|(_, e)| walk(e, f));
            if let Some(w) = where_clause {
                walk(w, f);
            }
        }
        Statement::Execute { using, .. } => using.iter().for_each(|u| walk(u, f)),
        _ => {}
    }
}

/// Number of positional parameter slots a statement needs (highest
/// `?` index + 1).
pub fn param_count(stmt: &Statement) -> usize {
    let mut n = 0;
    visit_exprs(stmt, &mut |e| {
        if let Expr::Param(i) = e {
            n = n.max(i + 1);
        }
    });
    n
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(i64),
    Sym(String),
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&'-') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(IdsError::Parse("unterminated string".into())),
                        Some(&ch) if ch == quote => {
                            if bytes.get(i + 1) == Some(&quote) {
                                s.push(quote);
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                out.push(Tok::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                out.push(Tok::Num(
                    text.parse()
                        .map_err(|_| IdsError::Parse(format!("bad number {text}")))?,
                ));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Ident(bytes[start..i].iter().collect()));
            }
            '!' | '<' | '>' if bytes.get(i + 1) == Some(&'=') => {
                out.push(Tok::Sym(format!("{c}=")));
                i += 2;
            }
            '(' | ')' | ',' | '=' | ';' | '*' | '.' | '<' | '>' | '?' => {
                out.push(Tok::Sym(c.to_string()));
                i += 1;
            }
            other => return Err(IdsError::Parse(format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    /// Positional parameters seen so far; each `?` takes the next index.
    params: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| IdsError::Parse("unexpected end of statement".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(IdsError::Parse(format!(
                "expected {kw}, got {:?}",
                self.peek()
            )))
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<()> {
        match self.next()? {
            Tok::Sym(s) if s == sym => Ok(()),
            other => Err(IdsError::Parse(format!("expected {sym:?}, got {other:?}"))),
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(s)) if s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(IdsError::Parse(format!(
                "expected identifier, got {other:?}"
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Str(s) => Ok(s),
            other => Err(IdsError::Parse(format!("expected string, got {other:?}"))),
        }
    }

    /// A comma-separated list of identifiers inside parentheses.
    fn ident_list(&mut self) -> Result<Vec<String>> {
        self.expect_sym("(")?;
        let mut out = Vec::new();
        if !self.eat_sym(")") {
            loop {
                out.push(self.ident()?);
                if self.eat_sym(")") {
                    break;
                }
                self.expect_sym(",")?;
            }
        }
        Ok(out)
    }

    fn statement(&mut self) -> Result<Statement> {
        let head = self.ident()?;
        match head.to_ascii_uppercase().as_str() {
            "CREATE" => self.create(),
            "DROP" => self.drop(),
            "INSERT" => self.insert(),
            "SELECT" => self.select(),
            "DELETE" => self.delete(),
            "UPDATE" => self.update(),
            "BEGIN" => {
                self.eat_kw("WORK");
                Ok(Statement::Begin)
            }
            "COMMIT" => {
                self.eat_kw("WORK");
                Ok(Statement::Commit)
            }
            "ROLLBACK" => {
                self.eat_kw("WORK");
                Ok(Statement::Rollback)
            }
            "SET" => self.set(),
            "PREPARE" => {
                let name = self.ident()?;
                self.expect_kw("FROM")?;
                let sql = self.string()?;
                Ok(Statement::Prepare { name, sql })
            }
            "EXECUTE" => {
                let name = self.ident()?;
                let mut using = Vec::new();
                if self.eat_kw("USING") {
                    loop {
                        using.push(self.expr()?);
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                }
                Ok(Statement::Execute { name, using })
            }
            "DEALLOCATE" => {
                self.eat_kw("PREPARE");
                Ok(Statement::Deallocate {
                    name: self.ident()?,
                })
            }
            "CHECK" => {
                self.expect_kw("INDEX")?;
                Ok(Statement::CheckIndex {
                    name: self.ident()?,
                })
            }
            "LOAD" => {
                self.expect_kw("FROM")?;
                let path = self.string()?;
                self.expect_kw("INSERT")?;
                self.expect_kw("INTO")?;
                Ok(Statement::Load {
                    path,
                    table: self.ident()?,
                })
            }
            "ALTER" => {
                self.expect_kw("FUNCTION")?;
                let name = self.ident()?;
                let mut negator = None;
                let mut commutator = None;
                loop {
                    if self.eat_kw("NEGATOR") {
                        negator = Some(self.ident()?);
                    } else if self.eat_kw("COMMUTATOR") {
                        commutator = Some(self.ident()?);
                    } else {
                        break;
                    }
                }
                if negator.is_none() && commutator.is_none() {
                    return Err(IdsError::Parse("expected NEGATOR or COMMUTATOR".into()));
                }
                Ok(Statement::AlterFunction {
                    name,
                    negator,
                    commutator,
                })
            }
            other => Err(IdsError::Parse(format!("unknown statement {other}"))),
        }
    }

    fn create(&mut self) -> Result<Statement> {
        if self.eat_kw("TABLE") {
            let name = self.ident()?;
            self.expect_sym("(")?;
            let mut columns = Vec::new();
            loop {
                let col = self.ident()?;
                let ty = self.ident()?;
                columns.push((col, ty));
                if self.eat_sym(")") {
                    break;
                }
                self.expect_sym(",")?;
            }
            return Ok(Statement::CreateTable { name, columns });
        }
        if self.eat_kw("FUNCTION") {
            let name = self.ident()?;
            let args = self.ident_list()?;
            self.expect_kw("RETURNING")?;
            let returns = self.ident()?;
            self.expect_kw("EXTERNAL")?;
            self.expect_kw("NAME")?;
            let external = self.string()?;
            self.expect_kw("LANGUAGE")?;
            let _lang = self.ident()?;
            return Ok(Statement::CreateFunction {
                name,
                args,
                returns,
                external,
            });
        }
        if self.eat_kw("SECONDARY") {
            self.expect_kw("ACCESS_METHOD")?;
            let name = self.ident()?;
            self.expect_sym("(")?;
            let mut bindings = Vec::new();
            loop {
                let slot = self.ident()?;
                self.expect_sym("=")?;
                let value = match self.next()? {
                    Tok::Ident(s) | Tok::Str(s) => s,
                    other => return Err(IdsError::Parse(format!("bad binding value {other:?}"))),
                };
                bindings.push((slot, value));
                if self.eat_sym(")") {
                    break;
                }
                self.expect_sym(",")?;
            }
            return Ok(Statement::CreateAccessMethod { name, bindings });
        }
        if self.eat_kw("OPCLASS") {
            let name = self.ident()?;
            self.expect_kw("FOR")?;
            let access_method = self.ident()?;
            self.expect_kw("STRATEGIES")?;
            let strategies = self.ident_list()?;
            let supports = if self.eat_kw("SUPPORT") {
                self.ident_list()?
            } else {
                Vec::new()
            };
            return Ok(Statement::CreateOpClass {
                name,
                access_method,
                strategies,
                supports,
            });
        }
        if self.eat_kw("INDEX") {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            self.expect_sym("(")?;
            let mut columns = Vec::new();
            loop {
                let col = self.ident()?;
                let opclass = match self.peek() {
                    Some(Tok::Ident(_)) => Some(self.ident()?),
                    _ => None,
                };
                columns.push((col, opclass));
                if self.eat_sym(")") {
                    break;
                }
                self.expect_sym(",")?;
            }
            self.expect_kw("USING")?;
            let using = self.ident()?;
            let space = if self.eat_kw("IN") {
                Some(self.ident()?)
            } else {
                None
            };
            return Ok(Statement::CreateIndex {
                name,
                table,
                columns,
                using,
                space,
            });
        }
        Err(IdsError::Parse(
            "expected TABLE, FUNCTION, SECONDARY, OPCLASS or INDEX".into(),
        ))
    }

    fn drop(&mut self) -> Result<Statement> {
        if self.eat_kw("TABLE") {
            return Ok(Statement::DropTable {
                name: self.ident()?,
            });
        }
        if self.eat_kw("INDEX") {
            return Ok(Statement::DropIndex {
                name: self.ident()?,
            });
        }
        if self.eat_kw("FUNCTION") {
            return Ok(Statement::DropFunction {
                name: self.ident()?,
            });
        }
        if self.eat_kw("SECONDARY") {
            self.expect_kw("ACCESS_METHOD")?;
            return Ok(Statement::DropAccessMethod {
                name: self.ident()?,
            });
        }
        if self.eat_kw("OPCLASS") {
            return Ok(Statement::DropOpClass {
                name: self.ident()?,
            });
        }
        Err(IdsError::Parse(
            "expected TABLE, INDEX, FUNCTION, SECONDARY or OPCLASS".into(),
        ))
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        self.expect_kw("VALUES")?;
        self.expect_sym("(")?;
        let mut values = Vec::new();
        loop {
            values.push(self.expr()?);
            if self.eat_sym(")") {
                break;
            }
            self.expect_sym(",")?;
        }
        Ok(Statement::Insert { table, values })
    }

    fn select(&mut self) -> Result<Statement> {
        let columns = if self.eat_sym("*") {
            SelectCols::Star
        } else {
            let mut cols = vec![self.ident()?];
            while self.eat_sym(",") {
                cols.push(self.ident()?);
            }
            SelectCols::Named(cols)
        };
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Select {
            columns,
            table,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    fn update(&mut self) -> Result<Statement> {
        // `UPDATE STATISTICS FOR INDEX ix` piggybacks on UPDATE.
        if self.eat_kw("STATISTICS") {
            self.expect_kw("FOR")?;
            self.expect_kw("INDEX")?;
            return Ok(Statement::UpdateStatistics {
                index: self.ident()?,
            });
        }
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_sym("=")?;
            sets.push((col, self.expr()?));
            if !self.eat_sym(",") {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            where_clause,
        })
    }

    fn set(&mut self) -> Result<Statement> {
        if self.eat_kw("ISOLATION") {
            self.expect_kw("TO")?;
            let mut level = self.ident()?;
            // Accept two-word levels such as "REPEATABLE READ".
            if let Some(Tok::Ident(_)) = self.peek() {
                level = format!("{level} {}", self.ident()?);
            }
            return Ok(Statement::SetIsolation { level });
        }
        if self.eat_kw("TRACE") {
            // Session-scoped forms: SET TRACE ON 'class' [LEVEL n],
            // SET TRACE OFF ['class'].
            if self.eat_kw("ON") {
                let class = self.string()?;
                let level = if self.eat_kw("LEVEL") {
                    match self.next()? {
                        Tok::Num(n) => n as u8,
                        other => return Err(IdsError::Parse(format!("bad trace level {other:?}"))),
                    }
                } else {
                    1
                };
                return Ok(Statement::SetTrace {
                    class: Some(class),
                    level: Some(level),
                    session: true,
                });
            }
            if self.eat_kw("OFF") {
                let class = match self.peek() {
                    Some(Tok::Str(_)) => Some(self.string()?),
                    _ => None,
                };
                return Ok(Statement::SetTrace {
                    class,
                    level: None,
                    session: true,
                });
            }
            // Global forms: SET TRACE 'class' TO n / SET TRACE 'class' OFF.
            let class = self.string()?;
            if self.eat_kw("OFF") {
                return Ok(Statement::SetTrace {
                    class: Some(class),
                    level: None,
                    session: false,
                });
            }
            self.expect_kw("TO")?;
            match self.next()? {
                Tok::Num(n) => Ok(Statement::SetTrace {
                    class: Some(class),
                    level: Some(n as u8),
                    session: false,
                }),
                other => Err(IdsError::Parse(format!("bad trace level {other:?}"))),
            }
        } else if self.eat_kw("EXPLAIN") {
            if self.eat_kw("ON") {
                Ok(Statement::SetExplain { on: true })
            } else if self.eat_kw("OFF") {
                Ok(Statement::SetExplain { on: false })
            } else {
                Err(IdsError::Parse("expected ON or OFF after EXPLAIN".into()))
            }
        } else if self.eat_kw("PARALLEL") {
            self.eat_kw("TO");
            match self.next()? {
                Tok::Num(n) if n >= 0 => Ok(Statement::SetParallel { workers: n as u32 }),
                other => Err(IdsError::Parse(format!("bad parallel degree {other:?}"))),
            }
        } else {
            Err(IdsError::Parse(
                "expected ISOLATION, TRACE, EXPLAIN, or PARALLEL".into(),
            ))
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let first = self.and_expr()?;
        let mut parts = vec![first];
        while self.eat_kw("OR") {
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Expr::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let first = self.cmp_expr()?;
        let mut parts = vec![first];
        while self.eat_kw("AND") {
            parts.push(self.cmp_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Expr::And(parts)
        })
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.primary()?;
        if let Some(Tok::Sym(op)) = self.peek() {
            if matches!(op.as_str(), "=" | "!=" | "<" | "<=" | ">" | ">=") {
                let op = op.clone();
                self.pos += 1;
                let right = self.primary()?;
                return Ok(Expr::Cmp {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                });
            }
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            return Ok(Expr::Not(Box::new(self.primary()?)));
        }
        if self.eat_sym("?") {
            let idx = self.params;
            self.params += 1;
            return Ok(Expr::Param(idx));
        }
        if self.eat_sym("(") {
            let e = self.expr()?;
            self.expect_sym(")")?;
            return Ok(e);
        }
        match self.next()? {
            Tok::Num(n) => Ok(Expr::Literal(Lit::Int(n))),
            Tok::Str(s) => Ok(Expr::Literal(Lit::Str(s))),
            Tok::Ident(id) => {
                if id.eq_ignore_ascii_case("true") {
                    return Ok(Expr::Literal(Lit::Bool(true)));
                }
                if id.eq_ignore_ascii_case("false") {
                    return Ok(Expr::Literal(Lit::Bool(false)));
                }
                if id.eq_ignore_ascii_case("null") {
                    return Ok(Expr::Literal(Lit::Null));
                }
                if self.eat_sym("(") {
                    let mut args = Vec::new();
                    if !self.eat_sym(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_sym(")") {
                                break;
                            }
                            self.expect_sym(",")?;
                        }
                    }
                    return Ok(Expr::Call { name: id, args });
                }
                Ok(Expr::Column(id))
            }
            other => Err(IdsError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

/// Parses one statement (an optional trailing semicolon is allowed).
pub fn parse(input: &str) -> Result<Statement> {
    parse_tokens(lex(input)?)
}

fn parse_tokens(toks: Vec<Tok>) -> Result<Statement> {
    let mut p = Parser {
        toks,
        pos: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    p.eat_sym(";");
    if p.pos != p.toks.len() {
        return Err(IdsError::Parse(format!(
            "trailing input after statement: {:?}",
            p.toks[p.pos..].iter().take(3).collect::<Vec<_>>()
        )));
    }
    Ok(stmt)
}

/// A DML statement with its literals lifted into positional parameters:
/// the plan-cache key, the lifted token stream (parsed lazily — a plan
/// cache hit on `key` never parses at all), and the lifted argument
/// values.
pub struct Normalized {
    /// The cache key: the token stream with every literal replaced by
    /// `?` and identifiers uppercased, so `select * from T where id=3`
    /// and `SELECT * FROM t WHERE id = 7` share one plan.
    pub key: String,
    /// The lifted literal values, in parameter order.
    pub args: Vec<Lit>,
    /// The token stream with literals replaced by `?` placeholders.
    lifted: Vec<Tok>,
}

impl Normalized {
    /// Parses the lifted token stream; lifted literals appear as
    /// [`Expr::Param`]. Only needed on a plan-cache miss.
    pub fn parse(self) -> Result<Statement> {
        parse_tokens(self.lifted)
    }
}

/// Normalizes a DML statement (INSERT / SELECT / DELETE / UPDATE) for
/// the transparent plan cache by lifting its literals to parameters.
/// Returns `Ok(None)` for non-DML statements and for text that already
/// contains explicit `?` placeholders (those arrive only via `PREPARE`,
/// which keeps its own compiled handle).
pub fn normalize_dml(input: &str) -> Result<Option<Normalized>> {
    let toks = lex(input)?;
    let head_is =
        |kw: &str| matches!(toks.first(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw));
    let dml = head_is("INSERT")
        || head_is("SELECT")
        || head_is("DELETE")
        || (head_is("UPDATE")
            && !matches!(toks.get(1), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("STATISTICS")));
    if !dml || toks.iter().any(|t| matches!(t, Tok::Sym(s) if s == "?")) {
        return Ok(None);
    }
    let mut lifted = Vec::with_capacity(toks.len());
    let mut args = Vec::new();
    let mut key = String::new();
    for t in toks {
        if !key.is_empty() {
            key.push(' ');
        }
        match t {
            Tok::Num(n) => {
                args.push(Lit::Int(n));
                key.push('?');
                lifted.push(Tok::Sym("?".into()));
            }
            Tok::Str(s) => {
                args.push(Lit::Str(s));
                key.push('?');
                lifted.push(Tok::Sym("?".into()));
            }
            Tok::Ident(s) => {
                key.push_str(&s.to_ascii_uppercase());
                lifted.push(Tok::Ident(s));
            }
            Tok::Sym(s) => {
                key.push_str(&s);
                lifted.push(Tok::Sym(s));
            }
        }
    }
    Ok(Some(Normalized { key, args, lifted }))
}

/// Splits a script into statements on semicolons outside strings and
/// parses each.
pub fn parse_script(input: &str) -> Result<Vec<Statement>> {
    let mut statements = Vec::new();
    let mut current = String::new();
    let mut quote: Option<char> = None;
    for c in input.chars() {
        match quote {
            Some(q) => {
                current.push(c);
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                '\'' | '"' => {
                    quote = Some(c);
                    current.push(c);
                }
                ';' => {
                    if !current.trim().is_empty() {
                        statements.push(parse(&current)?);
                    }
                    current.clear();
                }
                _ => current.push(c),
            },
        }
    }
    if !current.trim().is_empty() {
        statements.push(parse(&current)?);
    }
    Ok(statements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_statements() {
        // Every SQL example quoted in the paper, verbatim modulo the
        // typographic quotes.
        let create_fn = parse(
            "CREATE FUNCTION grt_open(pointer) RETURNING int \
             EXTERNAL NAME 'usr/functions/grtree.bld(grt_open)' LANGUAGE c;",
        )
        .unwrap();
        assert_eq!(
            create_fn,
            Statement::CreateFunction {
                name: "grt_open".into(),
                args: vec!["pointer".into()],
                returns: "int".into(),
                external: "usr/functions/grtree.bld(grt_open)".into(),
            }
        );

        let create_am = parse(
            "CREATE SECONDARY ACCESS_METHOD grtree_am ( am_create = grt_create, \
             am_open = grt_open, am_getnext = grt_getnext, am_close = grt_close, \
             am_drop = grt_drop, am_sptype = 'S' );",
        )
        .unwrap();
        match create_am {
            Statement::CreateAccessMethod { name, bindings } => {
                assert_eq!(name, "grtree_am");
                assert_eq!(bindings.len(), 6);
                assert_eq!(bindings[5], ("am_sptype".into(), "S".into()));
            }
            other => panic!("{other:?}"),
        }

        let create_oc = parse(
            "CREATE OPCLASS grt_opclass FOR grtree_am \
             STRATEGIES(grt_overlap, grt_contains, grt_containedin, grt_equal) \
             SUPPORT(grt_union, grt_size, grt_intersection);",
        )
        .unwrap();
        match create_oc {
            Statement::CreateOpClass {
                strategies,
                supports,
                ..
            } => {
                assert_eq!(strategies.len(), 4);
                assert_eq!(supports.len(), 3);
            }
            other => panic!("{other:?}"),
        }

        let create_ix = parse(
            "CREATE INDEX grt_index ON employees(column1 grt_opclass) USING grtree_am IN spc;",
        )
        .unwrap();
        assert_eq!(
            create_ix,
            Statement::CreateIndex {
                name: "grt_index".into(),
                table: "employees".into(),
                columns: vec![("column1".into(), Some("grt_opclass".into()))],
                using: "grtree_am".into(),
                space: Some("spc".into()),
            }
        );

        let select = parse(
            "SELECT Name FROM Employees \
             WHERE Overlaps(Time_Extent, \"12/10/95, UC, 12/10/95, NOW\")",
        )
        .unwrap();
        match select {
            Statement::Select {
                columns,
                table,
                where_clause: Some(Expr::Call { name, args }),
            } => {
                assert_eq!(columns, SelectCols::Named(vec!["Name".into()]));
                assert_eq!(table, "Employees");
                assert_eq!(name, "Overlaps");
                assert_eq!(args.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_boolean_structure() {
        let s = parse("SELECT * FROM t WHERE (f(a, 'x') AND g(a, 'y')) OR NOT h(a, 'z') AND b = 3")
            .unwrap();
        let Statement::Select {
            where_clause: Some(e),
            ..
        } = s
        else {
            panic!()
        };
        match e {
            Expr::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Expr::And(_)));
                assert!(matches!(parts[1], Expr::And(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_dml_and_session_control() {
        assert_eq!(parse("BEGIN WORK").unwrap(), Statement::Begin);
        assert_eq!(parse("commit").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK WORK;").unwrap(), Statement::Rollback);
        assert_eq!(
            parse("SET ISOLATION TO REPEATABLE READ").unwrap(),
            Statement::SetIsolation {
                level: "REPEATABLE READ".into()
            }
        );
        assert_eq!(
            parse("SET TRACE 'AM' TO 2").unwrap(),
            Statement::SetTrace {
                class: Some("AM".into()),
                level: Some(2),
                session: false
            }
        );
        assert_eq!(
            parse("SET TRACE 'AM' OFF").unwrap(),
            Statement::SetTrace {
                class: Some("AM".into()),
                level: None,
                session: false
            }
        );
        assert_eq!(
            parse("SET TRACE ON 'AM' LEVEL 2").unwrap(),
            Statement::SetTrace {
                class: Some("AM".into()),
                level: Some(2),
                session: true
            }
        );
        assert_eq!(
            parse("SET TRACE ON 'GRT'").unwrap(),
            Statement::SetTrace {
                class: Some("GRT".into()),
                level: Some(1),
                session: true
            }
        );
        assert_eq!(
            parse("SET TRACE OFF 'AM'").unwrap(),
            Statement::SetTrace {
                class: Some("AM".into()),
                level: None,
                session: true
            }
        );
        assert_eq!(
            parse("SET TRACE OFF").unwrap(),
            Statement::SetTrace {
                class: None,
                level: None,
                session: true
            }
        );
        assert_eq!(
            parse("SET EXPLAIN ON").unwrap(),
            Statement::SetExplain { on: true }
        );
        assert_eq!(
            parse("SET EXPLAIN OFF").unwrap(),
            Statement::SetExplain { on: false }
        );
        assert_eq!(
            parse("SET PARALLEL 4").unwrap(),
            Statement::SetParallel { workers: 4 }
        );
        assert_eq!(
            parse("SET PARALLEL TO 8").unwrap(),
            Statement::SetParallel { workers: 8 }
        );
        assert!(parse("SET PARALLEL many").is_err());
        assert_eq!(
            parse("CHECK INDEX grt_index").unwrap(),
            Statement::CheckIndex {
                name: "grt_index".into()
            }
        );
        assert_eq!(
            parse("UPDATE STATISTICS FOR INDEX grt_index").unwrap(),
            Statement::UpdateStatistics {
                index: "grt_index".into()
            }
        );
        let upd = parse("UPDATE t SET a = 1, b = 'x' WHERE c = 2").unwrap();
        match upd {
            Statement::Update { sets, .. } => assert_eq!(sets.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn string_escapes_and_errors() {
        let s = parse("INSERT INTO t VALUES ('it''s here')").unwrap();
        match s {
            Statement::Insert { values, .. } => {
                assert_eq!(values[0], Expr::Literal(Lit::Str("it's here".into())));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("CREATE SOMETHING x").is_err());
        assert!(parse("INSERT INTO t VALUES ('unterminated)").is_err());
        assert!(parse("SELECT * FROM t WHERE a = 1 garbage garbage").is_err());
    }

    #[test]
    fn parses_prepared_statement_syntax() {
        assert_eq!(
            parse("PREPARE p FROM 'SELECT * FROM t WHERE id = ?'").unwrap(),
            Statement::Prepare {
                name: "p".into(),
                sql: "SELECT * FROM t WHERE id = ?".into()
            }
        );
        assert_eq!(
            parse("EXECUTE p USING 1, 'x'").unwrap(),
            Statement::Execute {
                name: "p".into(),
                using: vec![
                    Expr::Literal(Lit::Int(1)),
                    Expr::Literal(Lit::Str("x".into()))
                ]
            }
        );
        assert_eq!(
            parse("EXECUTE p").unwrap(),
            Statement::Execute {
                name: "p".into(),
                using: vec![]
            }
        );
        assert_eq!(
            parse("DEALLOCATE PREPARE p;").unwrap(),
            Statement::Deallocate { name: "p".into() }
        );
        assert_eq!(
            parse("DEALLOCATE p").unwrap(),
            Statement::Deallocate { name: "p".into() }
        );
        // `?` placeholders number left to right.
        let s = parse("UPDATE t SET a = ?, b = ? WHERE c = ?").unwrap();
        match &s {
            Statement::Update {
                sets, where_clause, ..
            } => {
                assert_eq!(sets[0].1, Expr::Param(0));
                assert_eq!(sets[1].1, Expr::Param(1));
                assert_eq!(
                    where_clause,
                    &Some(Expr::Cmp {
                        op: "=".into(),
                        left: Box::new(Expr::Column("c".into())),
                        right: Box::new(Expr::Param(2)),
                    })
                );
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(param_count(&s), 3);
        assert!(parse("PREPARE p").is_err());
    }

    #[test]
    fn normalization_lifts_literals() {
        let n = normalize_dml("select id from T where id = 42 AND name = 'Julie'")
            .unwrap()
            .unwrap();
        assert_eq!(n.key, "SELECT ID FROM T WHERE ID = ? AND NAME = ?");
        assert_eq!(n.args, vec![Lit::Int(42), Lit::Str("Julie".into())]);
        // Different literals, same key: one cache entry.
        let m = normalize_dml("SELECT id FROM t WHERE id = 7 AND name = 'Ada'")
            .unwrap()
            .unwrap();
        assert_eq!(m.key, n.key);
        assert_eq!(param_count(&n.parse().unwrap()), 2);
        // Non-DML and explicit-param statements are not normalized.
        assert!(normalize_dml("CREATE TABLE t (id integer)")
            .unwrap()
            .is_none());
        assert!(normalize_dml("UPDATE STATISTICS FOR INDEX ix")
            .unwrap()
            .is_none());
        assert!(normalize_dml("SELECT * FROM t WHERE id = ?")
            .unwrap()
            .is_none());
        // Malformed DML normalizes (parsing is lazy) but fails to parse.
        assert!(normalize_dml("SELECT FROM WHERE")
            .unwrap()
            .unwrap()
            .parse()
            .is_err());
    }

    #[test]
    fn script_splitting_respects_strings() {
        let script =
            "CREATE TABLE a (x int); INSERT INTO a VALUES ('semi ; colon'); SELECT * FROM a";
        let stmts = parse_script(script).unwrap();
        assert_eq!(stmts.len(), 3);
    }
}
