//! The database engine: sessions, statement execution, and the
//! purpose-function call sequences of Figure 6.

use crate::catalog::{AmEntry, Catalog, IndexMeta, TableMeta};
use crate::heap;
use crate::opaque::OpaqueType;
use crate::opclass::{OpClass, OpClassRegistry};
use crate::planner::{self, Candidate, Plan};
use crate::prepare::{self, CompiledStatement, PlanCache, PlanChoice};
use crate::session::{MemDuration, Session};
use crate::sql::{self, Expr, Lit, SelectCols, Statement};
use crate::trace::TraceSink;
use crate::udr::{Routine, RoutineFn, UdrRegistry};
use crate::value::{DataType, Value};
use crate::vii::{AccessMethod, AmContext, IndexDescriptor, RowId, ScanDescriptor};
use crate::{IdsError, Result};
use grt_metrics::{Counter, Histogram, Metrics, MetricsSnapshot};
use grt_sbspace::{
    IsolationLevel, LoHandle, LoId, LockMode, PageSource, SbError, Sbspace, SbspaceOptions,
    SpaceSnapshot, Txn, TxnEnd,
};
use grt_temporal::{Clock, MockClock};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Engine construction options.
pub struct DatabaseOptions {
    /// Storage options for the shared sbspace.
    pub space: SbspaceOptions,
    /// The server clock (a deterministic [`MockClock`] by default).
    pub clock: Arc<dyn Clock>,
    /// How many times [`Connection::exec`] automatically retries an
    /// auto-commit statement whose transaction was aborted as a
    /// deadlock (or lock-timeout) victim. Zero surfaces the error on
    /// the first occurrence. Statements inside an explicit
    /// `BEGIN WORK` block are never retried — the whole transaction is
    /// rolled back and the error surfaced to the client.
    pub deadlock_retries: u32,
    /// Backoff slept before the first retry; it doubles on every
    /// further attempt (bounded exponential backoff).
    pub retry_backoff: Duration,
    /// Default parallel-scan degree offered to access methods for index
    /// scans (and used by the planner when costing them). `1` keeps
    /// every scan serial; sessions override it with `SET PARALLEL n`.
    pub scan_workers: usize,
    /// Capacity (in compiled statements) of the transparent plan cache
    /// keyed on normalized statement text. Least-recently-used entries
    /// are evicted beyond it; `PREPARE`d handles are not counted (they
    /// are owned by their connections). `0` disables transparent
    /// caching — every ad-hoc statement recompiles from scratch (the
    /// baseline the `sessions` bench measures prepared statements
    /// against).
    pub plan_cache_size: usize,
    /// Rows fetched per `am_getnext_batch` call on index scans — the
    /// dynamic-dispatch round trips per scan shrink by this factor.
    /// `1` degenerates to the row-at-a-time protocol.
    pub scan_batch_rows: usize,
    /// How often the storage engine's background fuzzy checkpointer
    /// runs. `None` (the default) disables it; recovery then replays
    /// the whole WAL and the log grows without bound. This mirrors
    /// into [`SbspaceOptions::checkpoint_interval`] and always wins
    /// over whatever `space` carries.
    pub checkpoint_interval: Option<Duration>,
    /// Size of each WAL segment file; checkpoints recycle whole
    /// segments below the transaction low-water mark. Mirrors into
    /// [`SbspaceOptions::wal_segment_bytes`] and always wins over
    /// whatever `space` carries.
    pub wal_segment_bytes: usize,
}

impl Default for DatabaseOptions {
    fn default() -> Self {
        DatabaseOptions {
            space: SbspaceOptions::default(),
            clock: Arc::new(MockClock::default()),
            deadlock_retries: 4,
            retry_backoff: Duration::from_millis(2),
            scan_workers: 1,
            plan_cache_size: 128,
            scan_batch_rows: 64,
            checkpoint_interval: None,
            wal_segment_bytes: grt_sbspace::DEFAULT_SEGMENT_BYTES,
        }
    }
}

/// Pre-registered engine counters, so the statement hot path bumps
/// atomics without touching the registry map.
pub(crate) struct EngineCounters {
    pub statements: Counter,
    pub statement_errors: Counter,
    pub stmt_retries: Counter,
    pub plans_index: Counter,
    pub plans_seq: Counter,
    pub udr_calls: Counter,
    /// `PREPARE`d statement handles opened / closed (DEALLOCATE,
    /// re-PREPARE, or connection drop) — equal when nothing leaks.
    pub prepared_opened: Counter,
    pub prepared_closed: Counter,
    /// Sessions opened by [`Database::connect`] / closed by
    /// [`Connection::close`] (or drop) — equal when no session leaks,
    /// which is the reconciliation a network server checks at shutdown.
    pub sessions_opened: Counter,
    pub sessions_closed: Counter,
    /// Purpose-function invocations by slot (`am.am_insert`, ...).
    pub am_calls: HashMap<&'static str, Counter>,
}

/// Every purpose-function slot the engine can invoke (Figure 5).
const AM_SLOTS: [&str; 15] = [
    "am_create",
    "am_drop",
    "am_open",
    "am_close",
    "am_build",
    "am_insert",
    "am_delete",
    "am_update",
    "am_beginscan",
    "am_getnext",
    "am_getnext_batch",
    "am_endscan",
    "am_scancost",
    "am_check",
    "am_stats",
];

impl EngineCounters {
    fn registered(metrics: &Metrics) -> EngineCounters {
        EngineCounters {
            statements: metrics.counter("ids.statements"),
            statement_errors: metrics.counter("ids.statement_errors"),
            stmt_retries: metrics.counter("stmt.retries"),
            plans_index: metrics.counter("ids.plans_index"),
            plans_seq: metrics.counter("ids.plans_seq"),
            udr_calls: metrics.counter("ids.udr_calls"),
            prepared_opened: metrics.counter("ids.prepared_opened"),
            prepared_closed: metrics.counter("ids.prepared_closed"),
            sessions_opened: metrics.counter("ids.sessions_opened"),
            sessions_closed: metrics.counter("ids.sessions_closed"),
            am_calls: AM_SLOTS
                .iter()
                .map(|&slot| (slot, metrics.counter(&format!("am.{slot}"))))
                .collect(),
        }
    }
}

/// Compensation applied to the (non-transactional, in-memory) catalog
/// when the transaction that performed a piece of DDL aborts: the
/// storage side rolls back through the sbspace log, the catalog side
/// through these records, applied in reverse order.
enum CatalogUndo {
    /// Undo of `DROP TABLE`.
    ReinsertTable(TableMeta),
    /// Undo of `CREATE TABLE` (catalog key).
    RemoveTable(String),
    /// Undo of `DROP INDEX`, with the index's root-fragment registry
    /// entry captured before `am_drop` tore it down.
    ReinsertIndex(IndexMeta, Option<u32>),
    /// Undo of `CREATE INDEX` (catalog key).
    RemoveIndex(String),
}

pub(crate) struct DbInner {
    pub space: Sbspace,
    pub catalog: Arc<Mutex<Catalog>>,
    pub udrs: Mutex<UdrRegistry>,
    /// Bumped on every routine-registry mutation (CREATE / DROP / ALTER
    /// FUNCTION); sessions discard their memoized routine resolutions
    /// when it moves (see [`Connection::resolve_udr`]).
    pub udr_generation: AtomicU64,
    pub opaques: Mutex<HashMap<String, OpaqueType>>,
    pub opclasses: Mutex<OpClassRegistry>,
    /// Loaded "shared libraries" providing access-method handlers,
    /// keyed by library file name (e.g. `grtree.bld`).
    pub libraries: Mutex<HashMap<String, Arc<dyn AccessMethod>>>,
    pub clock: Arc<dyn Clock>,
    pub trace: TraceSink,
    /// The unified registry, shared with the sbspace underneath.
    pub metrics: Arc<Metrics>,
    pub counters: EngineCounters,
    /// Wall-clock statement latency.
    pub exec_ns: Histogram,
    /// Rows returned per `am_getnext_batch` call (`scan.batch_rows`;
    /// the histogram's mean is the average batch fill).
    pub batch_rows: Histogram,
    /// The per-database plan cache (tentpole of the compile-once,
    /// execute-many path).
    pub plan_cache: Arc<PlanCache>,
    /// Catalog compensation records per open transaction, applied in
    /// reverse on abort (see [`CatalogUndo`]).
    txn_undo: Arc<Mutex<HashMap<u64, Vec<CatalogUndo>>>>,
    /// Rows pulled per batched index-scan fetch
    /// ([`DatabaseOptions::scan_batch_rows`]).
    scan_batch_rows: usize,
    /// Automatic retry budget for deadlock-victim auto-commit
    /// statements ([`DatabaseOptions::deadlock_retries`]).
    deadlock_retries: u32,
    /// Initial retry backoff, doubled per attempt.
    retry_backoff: Duration,
    /// Default parallel-scan degree ([`DatabaseOptions::scan_workers`]).
    scan_workers: usize,
    next_session: AtomicU64,
    /// Statement span ids, unique across sessions.
    next_span: AtomicU64,
    /// Transaction → session mapping for the end-of-transaction
    /// callback that clears per-transaction named memory (Section 5.4).
    txn_sessions: Arc<Mutex<HashMap<u64, Arc<Session>>>>,
}

/// The database server. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Database {
    pub(crate) inner: Arc<DbInner>,
}

/// A client connection: a session plus transaction state.
pub struct Connection {
    db: Database,
    session: Arc<Session>,
    txn: Mutex<Option<Txn>>,
    iso: Mutex<IsolationLevel>,
    /// Span id of the statement currently executing (0 between
    /// statements); stamped on trace events emitted on its behalf.
    span: AtomicU64,
    /// Set when a statement failed inside an explicit transaction: the
    /// transaction was rolled back (victim abort — all locks released)
    /// and every further statement is refused until the client
    /// acknowledges with `ROLLBACK WORK` (or `COMMIT WORK`, which
    /// reports the rollback). Without this flag, statements after the
    /// error would silently run outside the transaction the client
    /// believes is still open.
    aborted: AtomicBool,
    /// `PREPARE`d statements by (lower-cased) name.
    prepared: Mutex<HashMap<String, Arc<CompiledStatement>>>,
    /// The compiled statement behind the statement currently executing,
    /// consulted by the planner for its memoized plan choice. Set for
    /// the duration of `execute_with_retry` only.
    current_compiled: Mutex<Option<Arc<CompiledStatement>>>,
    /// Memoized routine resolutions (see [`Connection::resolve_udr`]).
    udr_cache: Mutex<UdrCache>,
    /// Set once by [`Connection::close`] so an explicit close followed
    /// by the drop does not double-count the session teardown.
    closed: AtomicBool,
    /// True while the statement currently executing runs inside an
    /// explicit transaction (stamped by [`Connection::with_txn`]).
    in_explicit: AtomicBool,
    /// Set once an explicit transaction runs any non-SELECT statement:
    /// later reads in that transaction must see its own uncommitted
    /// writes, so they leave the snapshot path until the transaction
    /// ends (the first-write-switches-to-locked rule).
    wrote: AtomicBool,
    /// The snapshot pinned by a REPEATABLE READ explicit transaction at
    /// its first snapshot-eligible read: every later read reuses it, so
    /// the whole transaction sees one consistent view without holding
    /// shared locks. Cleared at COMMIT/ROLLBACK (and on victim abort).
    pinned_snapshot: Mutex<Option<Arc<SpaceSnapshot>>>,
    /// The snapshot the statement currently executing reads from, if it
    /// took the snapshot path; [`Connection::ctx`] hands it to the
    /// access methods. Cleared when the statement finishes.
    active_snapshot: Mutex<Option<Arc<SpaceSnapshot>>>,
}

/// One memoized routine lookup: the argument types it resolved for (as
/// produced by [`Value::data_type`]) and the winning overload.
struct ResolvedUdr {
    types: Vec<Option<DataType>>,
    routine: Arc<Routine>,
}

/// Session-local memo of routine resolutions, keyed by the name as
/// written in the expression. Expression evaluation calls a routine
/// once per *row*; without the memo every row of a sequential scan
/// locks the shared registry and re-runs overload resolution. Entries
/// are dropped wholesale whenever [`DbInner::udr_generation`] moves
/// (any function DDL).
#[derive(Default)]
struct UdrCache {
    generation: u64,
    entries: HashMap<String, Vec<ResolvedUdr>>,
}

/// True when a cached argument-type slot matches the value — exactly
/// `*slot == value.data_type()`, without materializing the type (which
/// clones the type name for opaque values).
fn udr_type_matches(slot: &Option<DataType>, value: &Value) -> bool {
    match (slot, value) {
        (None, Value::Null) => true,
        (Some(DataType::Integer), Value::Int(_)) => true,
        (Some(DataType::Text), Value::Text(_)) => true,
        (Some(DataType::Date), Value::Date(_)) => true,
        (Some(DataType::Boolean), Value::Bool(_)) => true,
        (Some(DataType::Opaque(n)), Value::Opaque { type_name, .. }) => n == type_name,
        _ => false,
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.close();
    }
}

/// The result of one statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    /// Column headers (SELECT only).
    pub columns: Vec<String>,
    /// Raw result rows (SELECT only).
    pub rows: Vec<Vec<Value>>,
    /// Rows rendered through the type support functions.
    pub rendered: Vec<Vec<String>>,
    /// Status message for non-queries.
    pub message: String,
}

impl Database {
    /// Boots a database over an in-memory sbspace.
    pub fn new(opts: DatabaseOptions) -> Database {
        let DatabaseOptions {
            mut space,
            clock,
            deadlock_retries,
            retry_backoff,
            scan_workers,
            plan_cache_size,
            scan_batch_rows,
            checkpoint_interval,
            wal_segment_bytes,
        } = opts;
        space.checkpoint_interval = checkpoint_interval;
        space.wal_segment_bytes = wal_segment_bytes;
        let space = Sbspace::mem(space);
        Self::boot(
            space,
            clock,
            deadlock_retries,
            retry_backoff,
            scan_workers,
            plan_cache_size,
            scan_batch_rows,
        )
    }

    /// Boots a database over an existing sbspace (e.g. file-backed),
    /// with the default retry policy.
    pub fn with_space(space: Sbspace, clock: Arc<dyn Clock>) -> Database {
        let defaults = DatabaseOptions::default();
        Self::boot(
            space,
            clock,
            defaults.deadlock_retries,
            defaults.retry_backoff,
            defaults.scan_workers,
            defaults.plan_cache_size,
            defaults.scan_batch_rows,
        )
    }

    fn boot(
        space: Sbspace,
        clock: Arc<dyn Clock>,
        deadlock_retries: u32,
        retry_backoff: Duration,
        scan_workers: usize,
        plan_cache_size: usize,
        scan_batch_rows: usize,
    ) -> Database {
        // The sbspace already registered its I/O counters; the engine
        // joins the same registry so one snapshot covers every layer.
        let metrics = space.metrics();
        let txn_sessions: Arc<Mutex<HashMap<u64, Arc<Session>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let catalog: Arc<Mutex<Catalog>> = Arc::new(Mutex::new(Catalog::default()));
        let plan_cache = Arc::new(PlanCache::new(plan_cache_size, &metrics));
        let txn_undo: Arc<Mutex<HashMap<u64, Vec<CatalogUndo>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let cb_map = Arc::clone(&txn_sessions);
        let cb_undo = Arc::clone(&txn_undo);
        let cb_catalog = Arc::clone(&catalog);
        let cb_cache = Arc::clone(&plan_cache);
        space.on_txn_end(move |txn, end: TxnEnd| {
            if let Some(session) = cb_map.lock().remove(&txn.0) {
                session.clear_duration(MemDuration::PerTransaction);
            }
            // DDL undo: a rolled-back transaction takes its catalog
            // changes with it. The compensation records are applied in
            // reverse, then the plan cache drops every compiled
            // statement touching the affected tables.
            let ops = cb_undo.lock().remove(&txn.0);
            if end == TxnEnd::Abort {
                if let Some(ops) = ops {
                    let mut affected: Vec<String> = Vec::new();
                    {
                        let mut cat = cb_catalog.lock();
                        for op in ops.into_iter().rev() {
                            match op {
                                CatalogUndo::ReinsertTable(meta) => {
                                    let key = meta.name.to_ascii_lowercase();
                                    affected.push(key.clone());
                                    cat.tables.insert(key, meta);
                                }
                                CatalogUndo::RemoveTable(key) => {
                                    affected.push(key.clone());
                                    cat.tables.remove(&key);
                                }
                                CatalogUndo::ReinsertIndex(meta, frag) => {
                                    affected.push(meta.table.to_ascii_lowercase());
                                    if let Some(page) = frag {
                                        cat.fragments.lock().insert(meta.name.clone(), page);
                                    }
                                    cat.indices.insert(meta.name.to_ascii_lowercase(), meta);
                                }
                                CatalogUndo::RemoveIndex(key) => {
                                    if let Some(meta) = cat.indices.remove(&key) {
                                        affected.push(meta.table.to_ascii_lowercase());
                                        cat.fragments.lock().remove(&meta.name);
                                    }
                                }
                            }
                        }
                    }
                    for table in affected {
                        cb_cache.invalidate_table(&table);
                    }
                }
            }
        });
        let trace = TraceSink::new();
        metrics.adopt_counter("trace.dropped", trace.dropped_counter());
        // Alias the storage lock counters under the engine-facing
        // `lock.*` names (same cells — no double counting).
        let io = space.stats();
        metrics.adopt_counter("lock.waits", io.lock_waits.clone());
        metrics.adopt_counter("lock.deadlocks", io.deadlocks.clone());
        let counters = EngineCounters::registered(&metrics);
        let exec_ns = metrics.histogram("ids.exec_ns");
        let batch_rows = metrics.histogram("scan.batch_rows");
        Database {
            inner: Arc::new(DbInner {
                space,
                catalog,
                udrs: Mutex::new(UdrRegistry::default()),
                udr_generation: AtomicU64::new(0),
                opaques: Mutex::new(HashMap::new()),
                opclasses: Mutex::new(OpClassRegistry::default()),
                libraries: Mutex::new(HashMap::new()),
                clock,
                trace,
                metrics,
                counters,
                exec_ns,
                batch_rows,
                plan_cache,
                txn_undo,
                scan_batch_rows: scan_batch_rows.max(1),
                deadlock_retries,
                retry_backoff,
                scan_workers: scan_workers.max(1),
                next_session: AtomicU64::new(1),
                next_span: AtomicU64::new(1),
                txn_sessions,
            }),
        }
    }

    /// Opens a client connection.
    pub fn connect(&self) -> Connection {
        let id = self.inner.next_session.fetch_add(1, Ordering::SeqCst);
        self.inner.counters.sessions_opened.inc();
        Connection {
            db: self.clone(),
            session: Arc::new(Session::new(id)),
            txn: Mutex::new(None),
            iso: Mutex::new(IsolationLevel::ReadCommitted),
            span: AtomicU64::new(0),
            aborted: AtomicBool::new(false),
            prepared: Mutex::new(HashMap::new()),
            current_compiled: Mutex::new(None),
            udr_cache: Mutex::new(UdrCache::default()),
            closed: AtomicBool::new(false),
            in_explicit: AtomicBool::new(false),
            wrote: AtomicBool::new(false),
            pinned_snapshot: Mutex::new(None),
            active_snapshot: Mutex::new(None),
        }
    }

    /// Installs a native symbol for `CREATE FUNCTION ... EXTERNAL NAME`
    /// binding (what loading a DataBlade's shared library does).
    pub fn install_symbol(&self, external_name: &str, imp: RoutineFn) {
        self.inner.udrs.lock().install_symbol(external_name, imp);
    }

    /// Installs an access-method handler under a library file name; the
    /// `CREATE SECONDARY ACCESS_METHOD` statement binds to it through
    /// its purpose functions' `EXTERNAL NAME`s.
    pub fn install_library(&self, library: &str, handler: Arc<dyn AccessMethod>) {
        self.inner
            .libraries
            .lock()
            .insert(library.to_string(), handler);
    }

    /// Registers an opaque type (Section 4, step 1).
    pub fn install_opaque_type(&self, ty: OpaqueType) {
        self.inner
            .opaques
            .lock()
            .insert(ty.name.to_ascii_lowercase(), ty);
    }

    /// True when a UDR of this name is registered.
    pub fn function_exists(&self, name: &str) -> bool {
        self.inner.udrs.lock().exists(name)
    }

    /// Resolves a registered routine by name and argument types — the
    /// dynamic-dispatch path an extensible operator class pays for.
    pub fn resolve_routine(
        &self,
        name: &str,
        arg_types: &[Option<DataType>],
    ) -> Result<crate::udr::Routine> {
        Ok(self.inner.udrs.lock().resolve(name, arg_types)?.clone())
    }

    /// The server trace sink.
    pub fn trace(&self) -> TraceSink {
        self.inner.trace.clone()
    }

    /// The server clock.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.inner.clock)
    }

    /// The shared I/O statistics of the underlying sbspace.
    pub fn io_stats(&self) -> Arc<grt_sbspace::IoStats> {
        self.inner.space.stats()
    }

    /// The unified metrics registry: engine, access-method, and sbspace
    /// counters all live here. Also queryable as `SELECT * FROM
    /// sysmetrics`.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// A point-in-time snapshot of every registered counter and
    /// histogram, for `MetricsSnapshot::since` diffing.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// The underlying sbspace (test and benchmark hook).
    pub fn space(&self) -> Sbspace {
        self.inner.space.clone()
    }

    /// Live `PREPARE`d statement handles across every connection — the
    /// stress harness's leak check (zero once all sessions are gone).
    pub fn prepared_live(&self) -> usize {
        self.inner.plan_cache.live_prepared()
    }

    /// Compiled statements in the transparent plan cache (test hook).
    pub fn plan_cache_len(&self) -> usize {
        self.inner.plan_cache.len()
    }

    /// Dumps a system catalog.
    pub fn catalog_dump(&self, name: &str) -> Result<(Vec<String>, Vec<Vec<Value>>)> {
        if name.eq_ignore_ascii_case("sysmetrics") {
            let snap = self.inner.metrics.snapshot();
            let mut rows: Vec<Vec<Value>> = snap
                .counters
                .iter()
                .map(|(k, &v)| vec![Value::Text(k.clone()), Value::Int(v as i64)])
                .collect();
            // Gauges report their current level next to the counters.
            for (k, &v) in &snap.gauges {
                rows.push(vec![Value::Text(k.clone()), Value::Int(v as i64)]);
            }
            // Histograms surface as count/mean pseudo-counters so the
            // whole registry fits one two-column relation.
            for (k, h) in &snap.histograms {
                rows.push(vec![
                    Value::Text(format!("{k}.count")),
                    Value::Int(h.count as i64),
                ]);
                rows.push(vec![
                    Value::Text(format!("{k}.mean_ns")),
                    Value::Int(h.mean_ns() as i64),
                ]);
            }
            return Ok((vec!["name".into(), "value".into()], rows));
        }
        if name.eq_ignore_ascii_case("sysprocedures") {
            let udrs = self.inner.udrs.lock();
            let rows = udrs
                .all()
                .iter()
                .map(|r| {
                    vec![
                        Value::Text(r.name.clone()),
                        Value::Text(
                            r.arg_types
                                .iter()
                                .map(|t| t.to_string())
                                .collect::<Vec<_>>()
                                .join(", "),
                        ),
                        Value::Text(r.ret_type.to_string()),
                        Value::Text(r.external_name.clone()),
                    ]
                })
                .collect();
            return Ok((
                vec![
                    "name".into(),
                    "args".into(),
                    "returns".into(),
                    "external".into(),
                ],
                rows,
            ));
        }
        if name.eq_ignore_ascii_case("sysopclasses") {
            let ocs = self.inner.opclasses.lock();
            let rows = ocs
                .all()
                .iter()
                .map(|c| {
                    vec![
                        Value::Text(c.name.clone()),
                        Value::Text(c.access_method.clone()),
                        Value::Text(c.strategies.join(", ")),
                        Value::Text(c.supports.join(", ")),
                    ]
                })
                .collect();
            return Ok((
                vec![
                    "opclass".into(),
                    "am".into(),
                    "strategies".into(),
                    "support".into(),
                ],
                rows,
            ));
        }
        self.inner.catalog.lock().dump(name)
    }
}

impl Connection {
    /// The session behind this connection.
    pub fn session(&self) -> Arc<Session> {
        Arc::clone(&self.session)
    }

    /// The database handle.
    pub fn database(&self) -> Database {
        self.db.clone()
    }

    /// Executes one SQL statement.
    ///
    /// An auto-commit statement whose transaction is aborted as a
    /// deadlock (or lock-timeout) victim is retried here automatically,
    /// up to [`DatabaseOptions::deadlock_retries`] times with bounded
    /// exponential backoff. Each attempt runs in a fresh transaction;
    /// per-statement named memory is cleared between attempts (the
    /// Section 5.4 `PerStatement` current time re-resolves) while
    /// preserved `PerTransaction` memory carries over the victim abort.
    pub fn exec(&self, sql_text: &str) -> Result<QueryResult> {
        // The EXECUTE hot path: the named statement was compiled at
        // PREPARE, so the transparent-cache normalization below would
        // only re-lex text whose compiled form we already hold. Parse
        // the short EXECUTE statement directly instead.
        let head = sql_text.trim_start().as_bytes();
        if head.len() > 7
            && head[..7].eq_ignore_ascii_case(b"EXECUTE")
            && head[7].is_ascii_whitespace()
        {
            return self.dispatch(sql::parse(sql_text)?, None);
        }
        // Phase 1+2 (parse, verify/resolve) are served from the
        // transparent plan cache when the normalized statement text has
        // been seen before; a cache hit never parses at all.
        if let Some(normalized) = sql::normalize_dml(sql_text)? {
            let args: Vec<Value> = normalized.args.iter().map(Self::literal_value).collect();
            let compiled = match self.db.inner.plan_cache.get(&normalized.key) {
                Some(compiled) => compiled,
                None => {
                    let key = normalized.key.clone();
                    let Ok(stmt) = normalized.parse() else {
                        // Surface the parse error with the original
                        // (unlifted) statement text.
                        return self.dispatch(sql::parse(sql_text)?, None);
                    };
                    match self.resolve(stmt, Some(key)) {
                        Ok(compiled) => {
                            let compiled = Arc::new(compiled);
                            self.db.inner.plan_cache.insert(Arc::clone(&compiled));
                            compiled
                        }
                        // Unresolvable (e.g. unknown table): run the
                        // statement uncached so the error surfaces
                        // exactly as it always has.
                        Err(_) => return self.dispatch(sql::parse(sql_text)?, None),
                    }
                }
            };
            let stmt = prepare::bind(&compiled.stmt, &args)?;
            return self.dispatch(stmt, Some(compiled));
        }
        self.dispatch(sql::parse(sql_text)?, None)
    }

    /// Executes a semicolon-separated script, returning the last result.
    pub fn exec_script(&self, script: &str) -> Result<QueryResult> {
        let mut last = QueryResult::default();
        for stmt in sql::parse_script(script)? {
            last = self.dispatch(stmt, None)?;
        }
        Ok(last)
    }

    /// Compiles `sql_text` under `name` — the programmatic form of
    /// `PREPARE name FROM '<sql>'`, for drivers (network or embedded)
    /// that carry the statement text out of band and must not worry
    /// about re-quoting it into SQL.
    pub fn prepare(&self, name: &str, sql_text: &str) -> Result<QueryResult> {
        self.execute_with_retry(
            Statement::Prepare {
                name: name.to_string(),
                sql: sql_text.to_string(),
            },
            None,
        )
    }

    /// Runs the prepared statement `name` with already-materialized
    /// parameter values — the programmatic form of `EXECUTE name USING
    /// …` used by drivers whose bindings arrive as [`Value`]s (e.g.
    /// decoded off a wire protocol) rather than SQL literals. The same
    /// bind-time arity and type checks apply: a bad binding never
    /// starts a transaction.
    pub fn execute_values(&self, name: &str, args: &[Value]) -> Result<QueryResult> {
        let compiled = self
            .prepared
            .lock()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| IdsError::NotFound(format!("prepared statement {name}")))?;
        if args.len() != compiled.n_params {
            return Err(IdsError::Type(format!(
                "prepared statement {name} takes {} parameters, {} given",
                compiled.n_params,
                args.len()
            )));
        }
        let mut bound = Vec::with_capacity(args.len());
        for (v, expected) in args.iter().zip(&compiled.param_types) {
            bound.push(match expected {
                Some(ty) => self
                    .coerce(v.clone(), ty)
                    .map_err(|e| IdsError::Type(format!("binding parameters of {name}: {e}")))?,
                None => v.clone(),
            });
        }
        let stmt = prepare::bind(&compiled.stmt, &bound)?;
        self.execute_with_retry(stmt, Some(compiled))
    }

    /// Drops the prepared statement `name` — the programmatic form of
    /// `DEALLOCATE PREPARE name`.
    pub fn deallocate(&self, name: &str) -> Result<QueryResult> {
        self.execute_with_retry(
            Statement::Deallocate {
                name: name.to_string(),
            },
            None,
        )
    }

    /// Disconnects the session: any open explicit transaction is
    /// aborted (its locks released), surviving `PREPARE`d handles are
    /// deallocated so `ids.prepared_opened == ids.prepared_closed`
    /// reconciles, and per-session named memory is freed. Idempotent —
    /// a server reaping a dead network connection calls it explicitly,
    /// and the eventual drop becomes a no-op. Called automatically on
    /// drop.
    pub fn close(&self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        // Abort-on-disconnect: a client that vanishes mid-transaction
        // must not leave its locks held. `Txn::drop` aborts the
        // storage side; taking it out of the slot makes that happen
        // now rather than at connection drop.
        if let Some(txn) = self.txn.lock().take() {
            let _ = txn.abort();
        }
        self.reset_snapshot_state();
        *self.active_snapshot.lock() = None;
        self.aborted.store(false, Ordering::SeqCst);
        let leaked = {
            let mut prepared = self.prepared.lock();
            let n = prepared.len() as u64;
            prepared.clear();
            n
        };
        let counters = &self.db.inner.counters;
        counters.prepared_closed.add(leaked);
        counters.sessions_closed.inc();
        self.session.clear_duration(MemDuration::PerStatement);
        self.session.clear_duration(MemDuration::PerTransaction);
        self.session.clear_duration(MemDuration::PerSession);
    }

    /// True once [`Connection::close`] has run (explicitly or via
    /// drop); a closed connection refuses further statements.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Routes a parsed statement: top-level `EXECUTE` runs its bound
    /// prepared statement (counting as one statement); everything else
    /// goes straight to the retry loop.
    fn dispatch(
        &self,
        stmt: Statement,
        compiled: Option<Arc<CompiledStatement>>,
    ) -> Result<QueryResult> {
        if let Statement::Execute { name, using } = stmt {
            return self.execute_prepared(&name, &using);
        }
        self.execute_with_retry(stmt, compiled)
    }

    /// `EXECUTE name [USING v1, …]`: bind-time checks (the statement
    /// never starts executing on an arity or type error), then the
    /// normal execution path with the compiled handle attached.
    fn execute_prepared(&self, name: &str, using: &[Expr]) -> Result<QueryResult> {
        let mut args = Vec::with_capacity(using.len());
        for expr in using {
            let Expr::Literal(lit) = expr else {
                return Err(IdsError::Semantic(
                    "EXECUTE ... USING accepts literal values".into(),
                ));
            };
            args.push(Self::literal_value(lit));
        }
        self.execute_values(name, &args)
    }

    /// True for errors produced by a transaction aborted as a
    /// concurrency victim — the only errors worth retrying.
    fn is_retryable(e: &IdsError) -> bool {
        matches!(
            e,
            IdsError::Storage(SbError::Deadlock(_)) | IdsError::Storage(SbError::LockTimeout(_))
        )
    }

    fn execute_with_retry(
        &self,
        stmt: Statement,
        compiled: Option<Arc<CompiledStatement>>,
    ) -> Result<QueryResult> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(IdsError::Semantic("connection is closed".into()));
        }
        *self.current_compiled.lock() = compiled;
        let out = self.retry_loop(stmt);
        *self.current_compiled.lock() = None;
        out
    }

    fn retry_loop(&self, stmt: Statement) -> Result<QueryResult> {
        let inner = &self.db.inner;
        let mut attempt = 0u32;
        loop {
            // Retry is only sound for auto-commit statements: inside an
            // explicit transaction the failed statement is not the whole
            // unit of work, so the error must surface to the client.
            let auto_commit = !self.aborted.load(Ordering::SeqCst) && self.txn.lock().is_none();
            let out = self.execute(stmt.clone());
            self.session.clear_duration(MemDuration::PerStatement);
            match out {
                Err(ref e)
                    if auto_commit && Self::is_retryable(e) && attempt < inner.deadlock_retries =>
                {
                    let backoff = inner.retry_backoff.saturating_mul(1 << attempt.min(16));
                    attempt += 1;
                    inner.counters.stmt_retries.inc();
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
                out => {
                    if out.is_err() && auto_commit {
                        // Retries exhausted (or the error was never
                        // retryable): drop any per-transaction memory
                        // preserved for a retry that will not happen.
                        self.session.clear_duration(MemDuration::PerTransaction);
                    }
                    return out;
                }
            }
        }
    }

    fn execute(&self, stmt: Statement) -> Result<QueryResult> {
        let inner = &self.db.inner;
        inner.counters.statements.inc();
        self.span.store(
            inner.next_span.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
        let started = std::time::Instant::now();
        let out = self.execute_stmt(stmt);
        inner.exec_ns.observe(started.elapsed());
        if out.is_err() {
            inner.counters.statement_errors.inc();
        }
        self.span.store(0, Ordering::Relaxed);
        out
    }

    fn execute_stmt(&self, stmt: Statement) -> Result<QueryResult> {
        // A failed statement aborted the explicit transaction; refuse
        // everything except the closing COMMIT/ROLLBACK so the client
        // cannot mistake later statements for part of the transaction.
        if self.aborted.load(Ordering::SeqCst)
            && !matches!(stmt, Statement::Commit | Statement::Rollback)
        {
            return Err(IdsError::Semantic(
                "current transaction is aborted; statements ignored until ROLLBACK WORK".into(),
            ));
        }
        match stmt {
            Statement::Begin => {
                let mut guard = self.txn.lock();
                if guard.is_some() {
                    return Err(IdsError::Semantic("transaction already open".into()));
                }
                let txn = self.begin_txn();
                *guard = Some(txn);
                self.reset_snapshot_state();
                Ok(msg("transaction started"))
            }
            Statement::Commit => {
                self.reset_snapshot_state();
                if self.aborted.swap(false, Ordering::SeqCst) {
                    // The transaction was already rolled back on error;
                    // COMMIT closes the block but reports the truth.
                    return Ok(msg("rolled back (transaction aborted by an earlier error)"));
                }
                let txn = self
                    .txn
                    .lock()
                    .take()
                    .ok_or_else(|| IdsError::Semantic("no open transaction".into()))?;
                txn.commit()?;
                Ok(msg("committed"))
            }
            Statement::Rollback => {
                self.reset_snapshot_state();
                if self.aborted.swap(false, Ordering::SeqCst) {
                    return Ok(msg("rolled back"));
                }
                let txn = self
                    .txn
                    .lock()
                    .take()
                    .ok_or_else(|| IdsError::Semantic("no open transaction".into()))?;
                txn.abort()?;
                Ok(msg("rolled back"))
            }
            Statement::SetIsolation { level } => {
                let iso = match level.to_ascii_uppercase().as_str() {
                    "REPEATABLE READ" => IsolationLevel::RepeatableRead,
                    "COMMITTED READ" | "READ COMMITTED" => IsolationLevel::ReadCommitted,
                    other => return Err(IdsError::Semantic(format!("unknown isolation {other}"))),
                };
                *self.iso.lock() = iso;
                Ok(msg("isolation set"))
            }
            Statement::SetTrace {
                class,
                level,
                session,
            } => {
                let trace = &self.db.inner.trace;
                match (class, level, session) {
                    (Some(c), Some(l), false) => trace.on(&c, l),
                    (Some(c), None, false) => trace.off(&c),
                    (Some(c), Some(l), true) => trace.on_session(self.session.id(), &c, l),
                    (Some(c), None, true) => trace.off_session(self.session.id(), Some(&c)),
                    (None, _, true) => trace.off_session(self.session.id(), None),
                    (None, _, false) => {
                        return Err(IdsError::Semantic(
                            "SET TRACE without a class is session-scoped only".into(),
                        ))
                    }
                }
                Ok(msg("trace updated"))
            }
            Statement::SetExplain { on } => {
                // EXPLAIN rides the trace facility: the planner emits
                // class "EXPLAIN" events, enabled here per session.
                if on {
                    self.db
                        .inner
                        .trace
                        .on_session(self.session.id(), "EXPLAIN", 1);
                } else {
                    self.db
                        .inner
                        .trace
                        .off_session(self.session.id(), Some("EXPLAIN"));
                }
                Ok(msg("explain updated"))
            }
            Statement::SetParallel { workers } => {
                // Session-scoped override of the engine's default scan
                // degree; access methods read it back through the named
                // memory they share with the engine.
                self.session.put_named(
                    "parallel_workers",
                    MemDuration::PerSession,
                    (workers as usize).max(1),
                );
                Ok(msg("parallel degree set"))
            }
            Statement::Prepare { name, sql } => self.prepare_statement(&name, &sql),
            Statement::Deallocate { name } => {
                if self
                    .prepared
                    .lock()
                    .remove(&name.to_ascii_lowercase())
                    .is_none()
                {
                    return Err(IdsError::NotFound(format!("prepared statement {name}")));
                }
                self.db.inner.counters.prepared_closed.inc();
                Ok(msg(&format!("statement {name} deallocated")))
            }
            Statement::Execute { .. } => Err(IdsError::Semantic(
                "EXECUTE must be a top-level statement".into(),
            )),
            other => self.with_txn(|txn| self.run(other.clone(), txn)),
        }
    }

    /// `PREPARE name FROM '<sql>'`: parse and resolve now (errors are
    /// prepare-time), plan lazily on first EXECUTE.
    fn prepare_statement(&self, name: &str, sql_text: &str) -> Result<QueryResult> {
        let stmt = sql::parse(sql_text)?;
        if matches!(
            stmt,
            Statement::Prepare { .. }
                | Statement::Execute { .. }
                | Statement::Deallocate { .. }
                | Statement::Begin
                | Statement::Commit
                | Statement::Rollback
        ) {
            return Err(IdsError::Semantic(format!(
                "statement cannot be prepared: {sql_text}"
            )));
        }
        let compiled = Arc::new(self.resolve(stmt, None)?);
        self.db.inner.plan_cache.register(&compiled);
        let replaced = self
            .prepared
            .lock()
            .insert(name.to_ascii_lowercase(), compiled);
        let counters = &self.db.inner.counters;
        if replaced.is_some() {
            // Re-PREPARE under the same name closes the old handle.
            counters.prepared_closed.inc();
        }
        counters.prepared_opened.inc();
        Ok(msg(&format!("statement {name} prepared")))
    }

    /// Phase 2 of statement execution — verify/resolve: check the
    /// statement against the catalog and infer the types of its
    /// parameter slots, so `EXECUTE … USING` can reject mismatched
    /// values at bind time.
    fn resolve(&self, stmt: Statement, key: Option<String>) -> Result<CompiledStatement> {
        let n_params = sql::param_count(&stmt);
        let mut param_types: Vec<Option<DataType>> = vec![None; n_params];
        let mut tables = Vec::new();
        let table_name = match &stmt {
            Statement::Insert { table, .. }
            | Statement::Select { table, .. }
            | Statement::Delete { table, .. }
            | Statement::Update { table, .. } => Some(table.clone()),
            _ => None,
        };
        if let Some(tname) = &table_name {
            let table = self.db.inner.catalog.lock().table(tname)?.clone();
            tables.push(tname.to_ascii_lowercase());
            match &stmt {
                Statement::Insert { values, .. } => {
                    if values.len() != table.columns.len() {
                        return Err(IdsError::Semantic(format!(
                            "table {tname} has {} columns, {} values given",
                            table.columns.len(),
                            values.len()
                        )));
                    }
                    for (expr, (_, ty)) in values.iter().zip(&table.columns) {
                        self.infer_param_types(expr, Some(ty), &table, &mut param_types)?;
                    }
                }
                Statement::Select { where_clause, .. } | Statement::Delete { where_clause, .. } => {
                    if let Some(w) = where_clause {
                        self.validate_expr(w, &table)?;
                        self.infer_param_types(w, None, &table, &mut param_types)?;
                    }
                }
                Statement::Update {
                    sets, where_clause, ..
                } => {
                    for (col, expr) in sets {
                        let i = table.column_index(col)?;
                        let ty = table.columns[i].1.clone();
                        self.validate_expr(expr, &table)?;
                        self.infer_param_types(expr, Some(&ty), &table, &mut param_types)?;
                    }
                    if let Some(w) = where_clause {
                        self.validate_expr(w, &table)?;
                        self.infer_param_types(w, None, &table, &mut param_types)?;
                    }
                }
                _ => {}
            }
        }
        Ok(CompiledStatement {
            key,
            stmt,
            n_params,
            param_types,
            tables,
            plan: Mutex::new(None),
        })
    }

    /// Walks an expression assigning a type to every `?` slot that sits
    /// in a position whose type is known: INSERT values and UPDATE SET
    /// take their column's type, comparison operands the type of the
    /// other side, routine arguments the declared type when the routine
    /// resolves unambiguously by name and arity. Slots in opaque
    /// positions stay untyped and are checked at execution.
    fn infer_param_types(
        &self,
        expr: &Expr,
        expected: Option<&DataType>,
        table: &TableMeta,
        out: &mut Vec<Option<DataType>>,
    ) -> Result<()> {
        match expr {
            Expr::Param(i) => {
                if let (Some(ty), Some(slot)) = (expected, out.get_mut(*i)) {
                    if slot.is_none() {
                        *slot = Some(ty.clone());
                    }
                }
                Ok(())
            }
            Expr::Call { name, args } => {
                let declared: Option<Vec<DataType>> = {
                    let udrs = self.db.inner.udrs.lock();
                    let mut matching = udrs
                        .all()
                        .into_iter()
                        .filter(|r| {
                            r.name.eq_ignore_ascii_case(name) && r.arg_types.len() == args.len()
                        })
                        .map(|r| r.arg_types.clone());
                    match (matching.next(), matching.next()) {
                        (Some(sig), None) => Some(sig),
                        _ => None,
                    }
                };
                for (i, a) in args.iter().enumerate() {
                    self.infer_param_types(a, declared.as_ref().map(|s| &s[i]), table, out)?;
                }
                Ok(())
            }
            Expr::Cmp { left, right, .. } => {
                let side_type = |e: &Expr| -> Option<DataType> {
                    match e {
                        Expr::Column(c) => table.column_type(c).ok().cloned(),
                        Expr::Literal(lit) => Self::literal_value(lit).data_type(),
                        _ => None,
                    }
                };
                let lt = side_type(left);
                let rt = side_type(right);
                self.infer_param_types(left, rt.as_ref(), table, out)?;
                self.infer_param_types(right, lt.as_ref(), table, out)
            }
            Expr::And(parts) | Expr::Or(parts) => parts
                .iter()
                .try_for_each(|p| self.infer_param_types(p, None, table, out)),
            Expr::Not(inner) => self.infer_param_types(inner, None, table, out),
            Expr::Literal(_) | Expr::Column(_) | Expr::Bound(_) => Ok(()),
        }
    }

    /// Records a catalog compensation to run if `txn` aborts.
    fn register_undo(&self, txn: &Txn, op: CatalogUndo) {
        self.db
            .inner
            .txn_undo
            .lock()
            .entry(txn.id().0)
            .or_default()
            .push(op);
    }

    fn begin_txn(&self) -> Txn {
        let txn = self.db.inner.space.begin(*self.iso.lock());
        self.db
            .inner
            .txn_sessions
            .lock()
            .insert(txn.id().0, Arc::clone(&self.session));
        txn
    }

    fn with_txn<F: FnOnce(&Txn) -> Result<QueryResult>>(&self, f: F) -> Result<QueryResult> {
        let mut guard = self.txn.lock();
        if guard.is_some() {
            self.in_explicit.store(true, Ordering::SeqCst);
            let out = f(guard.as_ref().expect("checked"));
            if out.is_err() {
                // Abort-on-error: the explicit transaction cannot
                // continue past a failed statement. Roll it back right
                // here — the victim's locks must not outlive the error
                // — and poison the connection until ROLLBACK WORK.
                let txn = guard.take().expect("checked");
                drop(guard);
                let _ = txn.abort();
                self.reset_snapshot_state();
                self.aborted.store(true, Ordering::SeqCst);
            }
            return out;
        }
        drop(guard);
        self.in_explicit.store(false, Ordering::SeqCst);
        let txn = self.begin_txn();
        match f(&txn) {
            Ok(v) => {
                txn.commit()?;
                Ok(v)
            }
            Err(e) => {
                // Victim abort. When the statement will be retried, the
                // Section 5.4 per-transaction memory (the cached
                // current time) must survive into the retry even though
                // the abort callback clears it — snapshot and restore
                // around the rollback.
                let preserved = Self::is_retryable(&e)
                    .then(|| self.session.snapshot_duration(MemDuration::PerTransaction));
                let _ = txn.abort();
                if let Some(snapshot) = preserved {
                    self.session.restore(snapshot);
                }
                Err(e)
            }
        }
    }

    fn ctx<'a>(&'a self, txn: &'a Txn) -> AmContext<'a> {
        AmContext {
            space: self.db.inner.space.clone(),
            txn,
            clock: Arc::clone(&self.db.inner.clock),
            session: Arc::clone(&self.session),
            fragments: Arc::clone(&self.db.inner.catalog.lock().fragments),
            trace: self.scoped_trace(),
            snapshot: self.active_snapshot.lock().clone(),
        }
    }

    /// Forgets the per-transaction snapshot state: the write marker and
    /// the REPEATABLE READ pinned snapshot (dropping the latter lets
    /// the space reclaim the pages it kept alive).
    fn reset_snapshot_state(&self) {
        self.wrote.store(false, Ordering::SeqCst);
        *self.pinned_snapshot.lock() = None;
    }

    /// The shared trace sink, tagged with this connection's session and
    /// the span of the statement currently executing.
    fn scoped_trace(&self) -> TraceSink {
        self.db
            .inner
            .trace
            .scoped(self.session.id(), self.span.load(Ordering::Relaxed))
    }

    fn run(&self, stmt: Statement, txn: &Txn) -> Result<QueryResult> {
        // Any non-SELECT inside an explicit transaction takes it off the
        // snapshot read path for the rest of its life: its own writes
        // must be visible, which only the locked path guarantees.
        if self.in_explicit.load(Ordering::SeqCst) && !matches!(stmt, Statement::Select { .. }) {
            self.wrote.store(true, Ordering::SeqCst);
        }
        match stmt {
            Statement::CreateTable { name, columns } => self.create_table(txn, name, columns),
            Statement::DropTable { name } => self.drop_table(txn, name),
            Statement::CreateFunction {
                name,
                args,
                returns,
                external,
            } => {
                let arg_types = args.iter().map(|a| DataType::parse(a)).collect();
                self.db.inner.udrs.lock().create_function(
                    &name,
                    arg_types,
                    DataType::parse(&returns),
                    &external,
                )?;
                self.db.inner.udr_generation.fetch_add(1, Ordering::Release);
                Ok(msg(&format!("function {name} created")))
            }
            Statement::DropFunction { name } => {
                self.db.inner.udrs.lock().drop_function(&name)?;
                self.db.inner.udr_generation.fetch_add(1, Ordering::Release);
                self.db.inner.plan_cache.invalidate_all();
                Ok(msg(&format!("function {name} dropped")))
            }
            Statement::CreateAccessMethod { name, bindings } => {
                self.create_access_method(name, bindings)
            }
            Statement::CreateOpClass {
                name,
                access_method,
                strategies,
                supports,
            } => {
                self.db.inner.catalog.lock().am(&access_method)?;
                {
                    let udrs = self.db.inner.udrs.lock();
                    for f in strategies.iter().chain(&supports) {
                        if !udrs.exists(f) {
                            return Err(IdsError::NotFound(format!(
                                "function {f} (declare it before the opclass)"
                            )));
                        }
                    }
                }
                self.db.inner.opclasses.lock().create(OpClass {
                    name: name.clone(),
                    access_method,
                    strategies,
                    supports,
                })?;
                Ok(msg(&format!("opclass {name} created")))
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
                using,
                space,
            } => self.create_index(txn, name, table, columns, using, space),
            Statement::DropIndex { name } => self.drop_index(txn, name),
            Statement::DropAccessMethod { name } => {
                let mut catalog = self.db.inner.catalog.lock();
                if catalog
                    .indices
                    .values()
                    .any(|i| i.access_method.eq_ignore_ascii_case(&name))
                {
                    return Err(IdsError::Semantic(format!(
                        "access method {name} still has indices; drop them first"
                    )));
                }
                catalog
                    .ams
                    .remove(&name.to_ascii_lowercase())
                    .ok_or_else(|| IdsError::NotFound(format!("access method {name}")))?;
                drop(catalog);
                self.db.inner.plan_cache.invalidate_all();
                Ok(msg(&format!("access method {name} dropped")))
            }
            Statement::DropOpClass { name } => {
                let catalog = self.db.inner.catalog.lock();
                if catalog
                    .indices
                    .values()
                    .any(|i| i.opclass.eq_ignore_ascii_case(&name))
                {
                    return Err(IdsError::Semantic(format!(
                        "opclass {name} is in use by an index"
                    )));
                }
                drop(catalog);
                self.db.inner.opclasses.lock().drop_class(&name)?;
                self.db.inner.plan_cache.invalidate_all();
                Ok(msg(&format!("opclass {name} dropped")))
            }
            Statement::Insert { table, values } => self.insert(txn, table, values),
            Statement::Select {
                columns,
                table,
                where_clause,
            } => self.select(txn, columns, table, where_clause),
            Statement::Delete {
                table,
                where_clause,
            } => self.delete(txn, table, where_clause),
            Statement::Update {
                table,
                sets,
                where_clause,
            } => self.update(txn, table, sets, where_clause),
            Statement::CheckIndex { name } => {
                let (am, desc) = self.index_am(&name)?;
                let ctx = self.ctx(txn);
                self.trace_purpose(&am, "am_check");
                am.handler.am_check(&desc, &ctx)?;
                Ok(msg(&format!("index {name} is consistent")))
            }
            Statement::Load { path, table } => self.load(txn, path, table),
            Statement::AlterFunction {
                name,
                negator,
                commutator,
            } => {
                let mut udrs = self.db.inner.udrs.lock();
                if let Some(n) = negator {
                    udrs.set_negator(&name, &n)?;
                }
                if let Some(c) = commutator {
                    udrs.set_commutator(&name, &c)?;
                }
                drop(udrs);
                self.db.inner.udr_generation.fetch_add(1, Ordering::Release);
                self.db.inner.plan_cache.invalidate_all();
                Ok(msg(&format!("function {name} altered")))
            }
            Statement::UpdateStatistics { index } => {
                let (am, desc) = self.index_am(&index)?;
                let ctx = self.ctx(txn);
                self.trace_purpose(&am, "am_stats");
                let report = am.handler.am_stats(&desc, &ctx)?;
                Ok(msg(&report))
            }
            other => Err(IdsError::Semantic(format!("unhandled statement {other:?}"))),
        }
    }

    // ---- DDL -----------------------------------------------------------

    fn create_table(
        &self,
        txn: &Txn,
        name: String,
        columns: Vec<(String, String)>,
    ) -> Result<QueryResult> {
        let key = name.to_ascii_lowercase();
        {
            let catalog = self.db.inner.catalog.lock();
            if catalog.tables.contains_key(&key) {
                return Err(IdsError::Duplicate(format!("table {name}")));
            }
        }
        let mut cols = Vec::with_capacity(columns.len());
        for (cname, tname) in columns {
            let ty = DataType::parse(&tname);
            if let DataType::Opaque(t) = &ty {
                if !t.eq_ignore_ascii_case("pointer")
                    && !self
                        .db
                        .inner
                        .opaques
                        .lock()
                        .contains_key(&t.to_ascii_lowercase())
                {
                    return Err(IdsError::NotFound(format!("type {t}")));
                }
            }
            cols.push((cname, ty));
        }
        let lo = self.db.inner.space.create_lo(txn)?;
        let mut h = self.db.inner.space.open_lo(txn, lo, LockMode::Exclusive)?;
        heap::init(&mut h)?;
        h.close()?;
        self.db.inner.catalog.lock().tables.insert(
            key.clone(),
            TableMeta {
                name: name.clone(),
                columns: cols,
                lo,
            },
        );
        self.register_undo(txn, CatalogUndo::RemoveTable(key.clone()));
        self.db.inner.plan_cache.invalidate_table(&key);
        Ok(msg(&format!("table {name} created")))
    }

    fn drop_table(&self, txn: &Txn, name: String) -> Result<QueryResult> {
        let (meta, indexes) = {
            let catalog = self.db.inner.catalog.lock();
            let meta = catalog.table(&name)?.clone();
            let indexes: Vec<IndexMeta> = catalog.indices_of(&name).into_iter().cloned().collect();
            (meta, indexes)
        };
        for ix in indexes {
            self.drop_index(txn, ix.name)?;
        }
        self.db.inner.space.drop_lo(txn, meta.lo)?;
        self.db
            .inner
            .catalog
            .lock()
            .tables
            .remove(&name.to_ascii_lowercase());
        self.register_undo(txn, CatalogUndo::ReinsertTable(meta));
        self.db
            .inner
            .plan_cache
            .invalidate_table(&name.to_ascii_lowercase());
        Ok(msg(&format!("table {name} dropped")))
    }

    fn create_access_method(
        &self,
        name: String,
        bindings: Vec<(String, String)>,
    ) -> Result<QueryResult> {
        const PURPOSE_SLOTS: &[&str] = &[
            "am_create",
            "am_drop",
            "am_open",
            "am_close",
            "am_build",
            "am_beginscan",
            "am_rescan",
            "am_getnext",
            "am_getnext_batch",
            "am_endscan",
            "am_insert",
            "am_delete",
            "am_update",
            "am_scancost",
            "am_stats",
            "am_check",
        ];
        let mut purpose = Vec::new();
        let mut sptype = "S".to_string();
        let mut library: Option<String> = None;
        {
            let udrs = self.db.inner.udrs.lock();
            for (slot, value) in &bindings {
                let slot_l = slot.to_ascii_lowercase();
                if slot_l == "am_sptype" {
                    sptype = value.clone();
                    continue;
                }
                if !PURPOSE_SLOTS.contains(&slot_l.as_str()) {
                    return Err(IdsError::Semantic(format!("unknown parameter {slot}")));
                }
                // Purpose functions may be registered with any arity;
                // resolve by name alone.
                let routine = udrs
                    .all()
                    .into_iter()
                    .find(|r| r.name.eq_ignore_ascii_case(value))
                    .ok_or_else(|| IdsError::NotFound(format!("function {value}")))?;
                // The library is the file part of the EXTERNAL NAME:
                // "usr/functions/grtree.bld(grt_open)" -> "grtree.bld".
                let lib = routine
                    .external_name
                    .split('(')
                    .next()
                    .unwrap_or("")
                    .rsplit('/')
                    .next()
                    .unwrap_or("")
                    .to_string();
                match &library {
                    None => library = Some(lib),
                    Some(prev) if *prev == lib => {}
                    Some(prev) => {
                        return Err(IdsError::Semantic(format!(
                            "purpose functions span libraries {prev} and {lib}"
                        )))
                    }
                }
                purpose.push((slot_l, value.clone()));
            }
        }
        if !purpose.iter().any(|(s, _)| s == "am_getnext") {
            return Err(IdsError::Semantic(
                "am_getnext is mandatory for a secondary access method".into(),
            ));
        }
        let library =
            library.ok_or_else(|| IdsError::Semantic("no purpose functions given".into()))?;
        let handler = self
            .db
            .inner
            .libraries
            .lock()
            .get(&library)
            .cloned()
            .ok_or_else(|| IdsError::NotFound(format!("shared library {library}")))?;
        let mut catalog = self.db.inner.catalog.lock();
        let key = name.to_ascii_lowercase();
        if catalog.ams.contains_key(&key) {
            return Err(IdsError::Duplicate(format!("access method {name}")));
        }
        catalog.ams.insert(
            key,
            AmEntry {
                name: name.clone(),
                purpose,
                sptype,
                handler,
            },
        );
        Ok(msg(&format!("secondary access method {name} created")))
    }

    fn create_index(
        &self,
        txn: &Txn,
        name: String,
        table: String,
        columns: Vec<(String, Option<String>)>,
        using: String,
        space: Option<String>,
    ) -> Result<QueryResult> {
        let (table_meta, am, opclass_name) = {
            let catalog = self.db.inner.catalog.lock();
            if catalog.indices.contains_key(&name.to_ascii_lowercase()) {
                return Err(IdsError::Duplicate(format!("index {name}")));
            }
            let table_meta = catalog.table(&table)?.clone();
            let am = catalog.am(&using)?.clone();
            let opclasses = self.db.inner.opclasses.lock();
            let opclass_name = match columns.first().and_then(|(_, oc)| oc.clone()) {
                Some(oc) => {
                    let class = opclasses.get(&oc)?;
                    if !class.access_method.eq_ignore_ascii_case(&using) {
                        return Err(IdsError::Semantic(format!(
                            "opclass {oc} belongs to {}, not {using}",
                            class.access_method
                        )));
                    }
                    oc
                }
                None => opclasses
                    .default_for(&using)
                    .ok_or_else(|| {
                        IdsError::Semantic(format!("access method {using} has no default opclass"))
                    })?
                    .name
                    .clone(),
            };
            (table_meta, am, opclass_name)
        };
        let mut col_names = Vec::new();
        let mut col_types = Vec::new();
        for (c, _) in &columns {
            let idx = table_meta.column_index(c)?;
            col_names.push(table_meta.columns[idx].0.clone());
            col_types.push(table_meta.columns[idx].1.clone());
        }
        let mut params: HashMap<String, String> = space
            .iter()
            .map(|s| ("space".to_string(), s.clone()))
            .collect();
        params.insert("table_lo".into(), table_meta.lo.0.to_string());
        params.insert(
            "column_pos".into(),
            table_meta.column_index(&columns[0].0)?.to_string(),
        );
        params.insert(
            "scan_workers".into(),
            self.db.inner.scan_workers.to_string(),
        );
        let desc = IndexDescriptor {
            index_name: name.clone(),
            table: table_meta.name.clone(),
            columns: col_names.clone(),
            column_types: col_types,
            opclass: opclass_name.clone(),
            params,
            user_data: Mutex::new(None),
        };
        let ctx = self.ctx(txn);
        self.trace_purpose(&am, "am_create");
        am.handler.am_create(&desc, &ctx)?;
        // Existing rows are indexed on creation.
        let col_indexes: Vec<usize> = col_names
            .iter()
            .map(|c| table_meta.column_index(c).expect("validated"))
            .collect();
        {
            let h = self.open_heap(txn, &table_meta, false)?;
            let mut scan = heap::HeapScan::new();
            let mut rows: Vec<(RowId, Vec<Value>)> = Vec::new();
            while let Some((rid, row)) = scan.next(&h)? {
                let keys: Vec<Value> = col_indexes.iter().map(|&i| row[i].clone()).collect();
                rows.push((rid, keys));
            }
            self.trace_purpose(&am, "am_open");
            am.handler.am_open(&desc, &ctx)?;
            // An access method that knows how to pack a tree builds the
            // index in one pass; otherwise fall back to row-at-a-time
            // insertion, the original Figure 6(a) loop.
            let built = if rows.is_empty() {
                false
            } else {
                self.trace_purpose(&am, "am_build");
                am.handler.am_build(&desc, &rows, &ctx)?
            };
            if !built {
                for (rid, keys) in &rows {
                    self.trace_purpose(&am, "am_insert");
                    am.handler.am_insert(&desc, keys, *rid, &ctx)?;
                }
            }
            self.trace_purpose(&am, "am_close");
            am.handler.am_close(&desc, &ctx)?;
        }
        self.db.inner.catalog.lock().indices.insert(
            name.to_ascii_lowercase(),
            IndexMeta {
                name: name.clone(),
                table: table_meta.name.clone(),
                columns: col_names,
                access_method: am.name.clone(),
                opclass: opclass_name,
                space: space.unwrap_or_else(|| "sbspace".into()),
            },
        );
        self.register_undo(txn, CatalogUndo::RemoveIndex(name.to_ascii_lowercase()));
        self.db
            .inner
            .plan_cache
            .invalidate_table(&table_meta.name.to_ascii_lowercase());
        Ok(msg(&format!("index {name} created")))
    }

    fn drop_index(&self, txn: &Txn, name: String) -> Result<QueryResult> {
        let (am, desc) = self.index_am(&name)?;
        // Capture the root-fragment registry entry before am_drop tears
        // it down, so an aborting transaction can reinstate it.
        let (meta, frag) = {
            let catalog = self.db.inner.catalog.lock();
            let meta = catalog.index(&name)?.clone();
            let frag = catalog.fragments.lock().get(&meta.name).copied();
            (meta, frag)
        };
        let ctx = self.ctx(txn);
        self.trace_purpose(&am, "am_drop");
        am.handler.am_drop(&desc, &ctx)?;
        self.db
            .inner
            .catalog
            .lock()
            .indices
            .remove(&name.to_ascii_lowercase());
        let table_key = meta.table.to_ascii_lowercase();
        self.register_undo(txn, CatalogUndo::ReinsertIndex(meta, frag));
        self.db.inner.plan_cache.invalidate_table(&table_key);
        Ok(msg(&format!("index {name} dropped")))
    }

    /// Builds the (handler, descriptor) pair for a named index.
    fn index_am(&self, index: &str) -> Result<(AmEntry, IndexDescriptor)> {
        let catalog = self.db.inner.catalog.lock();
        let ix = catalog.index(index)?.clone();
        let table = catalog.table(&ix.table)?.clone();
        let am = catalog.am(&ix.access_method)?.clone();
        drop(catalog);
        let col_types = ix
            .columns
            .iter()
            .map(|c| table.column_type(c).cloned())
            .collect::<Result<Vec<_>>>()?;
        let mut params = HashMap::new();
        params.insert("table_lo".to_string(), table.lo.0.to_string());
        params.insert(
            "column_pos".to_string(),
            table.column_index(&ix.columns[0])?.to_string(),
        );
        params.insert(
            "scan_workers".to_string(),
            self.db.inner.scan_workers.to_string(),
        );
        Ok((
            am,
            IndexDescriptor {
                index_name: ix.name.clone(),
                table: ix.table.clone(),
                columns: ix.columns.clone(),
                column_types: col_types,
                opclass: ix.opclass.clone(),
                params,
                user_data: Mutex::new(None),
            },
        ))
    }

    fn trace_purpose(&self, am: &AmEntry, slot: &str) {
        if let Some(c) = self.db.inner.counters.am_calls.get(slot) {
            c.inc();
        }
        self.scoped_trace()
            .emit_with("AM", 1, || am.purpose_name(slot));
    }

    /// The `LOAD` command: reads a pipe-separated text file and inserts
    /// each line through the type-support *import* functions — the
    /// paper's Section 6.3 third support-function family.
    fn load(&self, txn: &Txn, path: String, table: String) -> Result<QueryResult> {
        let table_meta = self.db.inner.catalog.lock().table(&table)?.clone();
        let content = std::fs::read_to_string(&path)
            .map_err(|e| IdsError::Semantic(format!("cannot read {path}: {e}")))?;
        let ctx = self.ctx(txn);
        let mut count = 0usize;
        for (lineno, line) in content.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('|').collect();
            if fields.len() != table_meta.columns.len() {
                return Err(IdsError::Semantic(format!(
                    "{path}:{}: {} fields for {} columns",
                    lineno + 1,
                    fields.len(),
                    table_meta.columns.len()
                )));
            }
            let mut row = Vec::with_capacity(fields.len());
            for (field, (_, ty)) in fields.iter().zip(&table_meta.columns) {
                let v =
                    match ty {
                        DataType::Integer => Value::Int(field.trim().parse().map_err(|_| {
                            IdsError::Type(format!("bad integer {field:?} in {path}"))
                        })?),
                        DataType::Opaque(t) => {
                            let opaques = self.db.inner.opaques.lock();
                            let ot = opaques
                                .get(&t.to_ascii_lowercase())
                                .ok_or_else(|| IdsError::NotFound(format!("type {t}")))?;
                            // The dedicated *import* function, which may
                            // differ from plain text input.
                            Value::Opaque {
                                type_name: ot.name.clone(),
                                bytes: (ot.import)(field.trim())?,
                            }
                        }
                        _ => self.coerce(Value::Text(field.trim().to_string()), ty)?,
                    };
                row.push(v);
            }
            let rid = {
                let mut h = self.open_heap(txn, &table_meta, true)?;
                heap::insert(&mut h, &row)?
            };
            self.for_each_index(&table_meta, |am, desc, keys_of| {
                let keys = keys_of(&row);
                self.trace_purpose(am, "am_open");
                am.handler.am_open(desc, &ctx)?;
                self.trace_purpose(am, "am_insert");
                am.handler.am_insert(desc, &keys, rid, &ctx)?;
                self.trace_purpose(am, "am_close");
                am.handler.am_close(desc, &ctx)
            })?;
            count += 1;
        }
        Ok(msg(&format!("{count} rows loaded")))
    }

    // ---- values and expressions ---------------------------------------

    fn coerce(&self, v: Value, ty: &DataType) -> Result<Value> {
        match (v, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Text(s), DataType::Date) => Ok(Value::Date(
                grt_temporal::Day::parse(&s).map_err(|e| IdsError::Type(e.to_string()))?,
            )),
            (Value::Text(s), DataType::Opaque(t)) => {
                let opaques = self.db.inner.opaques.lock();
                let ot = opaques
                    .get(&t.to_ascii_lowercase())
                    .ok_or_else(|| IdsError::NotFound(format!("type {t}")))?;
                ot.value_from_text(&s)
            }
            (v, ty) => {
                if v.data_type().as_ref() == Some(ty) {
                    Ok(v)
                } else {
                    Err(IdsError::Type(format!("cannot coerce {v} to {ty}")))
                }
            }
        }
    }

    fn literal_value(lit: &Lit) -> Value {
        match lit {
            Lit::Int(i) => Value::Int(*i),
            Lit::Str(s) => Value::Text(s.clone()),
            Lit::Bool(b) => Value::Bool(*b),
            Lit::Null => Value::Null,
        }
    }

    /// Evaluates a constant expression (no column references), coercing
    /// to the expected type when given.
    fn fold_expr(
        &self,
        expr: &Expr,
        expected: Option<&DataType>,
        ctx: &AmContext,
    ) -> Result<Value> {
        let v = match expr {
            Expr::Literal(lit) => Self::literal_value(lit),
            Expr::Bound(v) => v.clone(),
            Expr::Param(i) => {
                return Err(IdsError::Semantic(format!("unbound parameter {}", i + 1)))
            }
            Expr::Call { name, args } => {
                let vals: Result<Vec<Value>> =
                    args.iter().map(|a| self.fold_expr(a, None, ctx)).collect();
                self.call_udr(name, vals?, ctx)?
            }
            other => {
                return Err(IdsError::Semantic(format!(
                    "expected a constant expression, got {other:?}"
                )))
            }
        };
        match expected {
            Some(ty) => self.coerce(v, ty),
            None => Ok(v),
        }
    }

    /// Invokes a UDR, coercing text literals to the declared argument
    /// types when the overload is unambiguous.
    /// Resolves a routine call's overload, memoized per session. The
    /// resolution is a pure function of the name, the argument types,
    /// and the registry contents, so the memo holds until function DDL
    /// bumps the registry generation.
    fn resolve_udr(&self, name: &str, args: &[Value]) -> Result<Arc<Routine>> {
        let generation = self.db.inner.udr_generation.load(Ordering::Acquire);
        let mut cache = self.udr_cache.lock();
        if cache.generation != generation {
            cache.entries.clear();
            cache.generation = generation;
        }
        if let Some(resolved) = cache.entries.get(name) {
            for e in resolved {
                if e.types.len() == args.len()
                    && e.types
                        .iter()
                        .zip(args)
                        .all(|(t, v)| udr_type_matches(t, v))
                {
                    return Ok(Arc::clone(&e.routine));
                }
            }
        }
        let types: Vec<Option<DataType>> = args.iter().map(|v| v.data_type()).collect();
        let routine = {
            let udrs = self.db.inner.udrs.lock();
            match udrs.resolve(name, &types) {
                Ok(r) => r.clone(),
                Err(first_err) => {
                    // Retry with text arguments treated as wildcards
                    // (they may coerce to opaque/date parameters).
                    let relaxed: Vec<Option<DataType>> = types
                        .iter()
                        .map(|t| match t {
                            Some(DataType::Text) => None,
                            other => other.clone(),
                        })
                        .collect();
                    udrs.resolve(name, &relaxed).map_err(|_| first_err)?.clone()
                }
            }
        };
        let routine = Arc::new(routine);
        cache
            .entries
            .entry(name.to_string())
            .or_default()
            .push(ResolvedUdr {
                types,
                routine: Arc::clone(&routine),
            });
        Ok(routine)
    }

    fn call_udr(&self, name: &str, args: Vec<Value>, ctx: &AmContext) -> Result<Value> {
        let routine = self.resolve_udr(name, &args)?;
        if routine.arg_types.len() != args.len() {
            return Err(IdsError::Type(format!(
                "{name} expects {} arguments",
                routine.arg_types.len()
            )));
        }
        let mut coerced = Vec::with_capacity(args.len());
        for (v, ty) in args.into_iter().zip(&routine.arg_types) {
            coerced.push(self.coerce(v, ty)?);
        }
        self.db.inner.counters.udr_calls.inc();
        (routine.imp)(&coerced, ctx)
    }

    /// Evaluates an expression against a row.
    fn eval_expr(
        &self,
        expr: &Expr,
        row: &[Value],
        table: &TableMeta,
        ctx: &AmContext,
    ) -> Result<Value> {
        match expr {
            Expr::Literal(lit) => Ok(Self::literal_value(lit)),
            Expr::Bound(v) => Ok(v.clone()),
            Expr::Param(i) => Err(IdsError::Semantic(format!("unbound parameter {}", i + 1))),
            Expr::Column(c) => Ok(row[table.column_index(c)?].clone()),
            Expr::Call { name, args } => {
                let vals: Result<Vec<Value>> = args
                    .iter()
                    .map(|a| self.eval_expr(a, row, table, ctx))
                    .collect();
                self.call_udr(name, vals?, ctx)
            }
            Expr::Cmp { op, left, right } => {
                let l = self.eval_expr(left, row, table, ctx)?;
                let r = self.eval_expr(right, row, table, ctx)?;
                compare(op, &l, &r, self)
            }
            Expr::And(parts) => {
                for p in parts {
                    if !self.eval_expr(p, row, table, ctx)?.as_bool()? {
                        return Ok(Value::Bool(false));
                    }
                }
                Ok(Value::Bool(true))
            }
            Expr::Or(parts) => {
                for p in parts {
                    if self.eval_expr(p, row, table, ctx)?.as_bool()? {
                        return Ok(Value::Bool(true));
                    }
                }
                Ok(Value::Bool(false))
            }
            Expr::Not(inner) => Ok(Value::Bool(
                !self.eval_expr(inner, row, table, ctx)?.as_bool()?,
            )),
        }
    }

    /// Decides whether the statement about to read `table` can run on a
    /// frozen space snapshot instead of the LO-locked path, and takes
    /// (or reuses) that snapshot. `None` means the locked path:
    /// the explicit transaction has written (its own writes must be
    /// visible), an index on the table does not support snapshot
    /// traversal, a REPEATABLE READ pinned snapshot does not cover this
    /// table, or the snapshot could not be taken (e.g. an LO created in
    /// a still-open transaction has no published state to freeze).
    fn statement_snapshot(&self, table: &TableMeta) -> Option<Arc<SpaceSnapshot>> {
        let explicit = self.in_explicit.load(Ordering::SeqCst);
        if explicit && self.wrote.load(Ordering::SeqCst) {
            return None;
        }
        // The statement's view: the heap plus every index fragment. All
        // indexes must opt in — one locked index would deadlock the
        // statement against itself on a mixed plan.
        let mut los = vec![table.lo];
        let index_names: Vec<String> = self
            .db
            .inner
            .catalog
            .lock()
            .indices_of(&table.name)
            .into_iter()
            .map(|ix| ix.name.clone())
            .collect();
        if !index_names.is_empty() {
            let fragments = Arc::clone(&self.db.inner.catalog.lock().fragments);
            let fragments = fragments.lock();
            for name in &index_names {
                let Ok((am, _)) = self.index_am(name) else {
                    return None;
                };
                if !am.handler.am_supports_snapshot() {
                    return None;
                }
                los.push(LoId(*fragments.get(name)?));
            }
        }
        if explicit && *self.iso.lock() == IsolationLevel::RepeatableRead {
            // One consistent view for the whole transaction: reuse the
            // pinned snapshot when it covers this statement's objects,
            // and never mix epochs — a table outside the pinned view
            // reads through the locked path instead.
            let mut pinned = self.pinned_snapshot.lock();
            if let Some(s) = pinned.as_ref() {
                return los.iter().all(|&lo| s.contains(lo)).then(|| Arc::clone(s));
            }
            let snap = Arc::new(self.db.inner.space.snapshot_for(&los).ok()?);
            *pinned = Some(Arc::clone(&snap));
            return Some(snap);
        }
        self.db.inner.space.snapshot_for(&los).ok().map(Arc::new)
    }

    fn open_heap(&self, txn: &Txn, table: &TableMeta, write: bool) -> Result<LoHandle> {
        let mode = if write {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        };
        Ok(self.db.inner.space.open_lo(txn, table.lo, mode)?)
    }

    /// Renders a value through its type support functions.
    pub fn render_value(&self, v: &Value) -> String {
        if let Value::Opaque { type_name, .. } = v {
            let opaques = self.db.inner.opaques.lock();
            if let Some(ot) = opaques.get(&type_name.to_ascii_lowercase()) {
                if let Ok(text) = ot.value_to_text(v) {
                    return text;
                }
            }
        }
        v.to_string()
    }

    // ---- DML -----------------------------------------------------------

    fn insert(&self, txn: &Txn, table: String, values: Vec<Expr>) -> Result<QueryResult> {
        let table_meta = self.db.inner.catalog.lock().table(&table)?.clone();
        if values.len() != table_meta.columns.len() {
            return Err(IdsError::Semantic(format!(
                "table {table} has {} columns, {} values given",
                table_meta.columns.len(),
                values.len()
            )));
        }
        let ctx = self.ctx(txn);
        let mut row = Vec::with_capacity(values.len());
        for (expr, (_, ty)) in values.iter().zip(&table_meta.columns) {
            row.push(self.fold_expr(expr, Some(ty), &ctx)?);
        }
        let rid = {
            let mut h = self.open_heap(txn, &table_meta, true)?;
            heap::insert(&mut h, &row)?
        };
        // Maintain every index: the Figure 6(a) call sequence per index.
        self.for_each_index(&table_meta, |am, desc, keys_of| {
            let keys = keys_of(&row);
            self.trace_purpose(am, "am_open");
            am.handler.am_open(desc, &ctx)?;
            self.trace_purpose(am, "am_insert");
            am.handler.am_insert(desc, &keys, rid, &ctx)?;
            self.trace_purpose(am, "am_close");
            am.handler.am_close(desc, &ctx)
        })?;
        Ok(msg("1 row inserted"))
    }

    /// Runs `f` for every index of `table`, passing a key extractor.
    fn for_each_index(
        &self,
        table: &TableMeta,
        mut f: impl FnMut(&AmEntry, &IndexDescriptor, &dyn Fn(&[Value]) -> Vec<Value>) -> Result<()>,
    ) -> Result<()> {
        let indexes: Vec<IndexMeta> = self
            .db
            .inner
            .catalog
            .lock()
            .indices_of(&table.name)
            .into_iter()
            .cloned()
            .collect();
        for ix in indexes {
            let (am, desc) = self.index_am(&ix.name)?;
            let cols: Vec<usize> = ix
                .columns
                .iter()
                .map(|c| table.column_index(c))
                .collect::<Result<Vec<_>>>()?;
            let extract = move |row: &[Value]| -> Vec<Value> {
                cols.iter().map(|&i| row[i].clone()).collect()
            };
            f(&am, &desc, &extract)?;
        }
        Ok(())
    }

    /// Bind-time validation: every function named in the expression
    /// must resolve to a registered UDR, and every column must exist.
    fn validate_expr(&self, expr: &Expr, table: &TableMeta) -> Result<()> {
        match expr {
            Expr::Literal(_) | Expr::Param(_) | Expr::Bound(_) => Ok(()),
            Expr::Column(c) => table.column_index(c).map(|_| ()),
            Expr::Call { name, args } => {
                if !self.db.inner.udrs.lock().exists(name) {
                    return Err(IdsError::NotFound(format!("function {name}")));
                }
                args.iter().try_for_each(|a| self.validate_expr(a, table))
            }
            Expr::Cmp { left, right, .. } => {
                self.validate_expr(left, table)?;
                self.validate_expr(right, table)
            }
            Expr::And(parts) | Expr::Or(parts) => {
                parts.iter().try_for_each(|p| self.validate_expr(p, table))
            }
            Expr::Not(inner) => self.validate_expr(inner, table),
        }
    }

    /// Phase 3 of statement execution — plan. A statement that came
    /// through the plan cache memoizes its access-path *choice*; a hit
    /// rebuilds the concrete plan for that choice against the current
    /// catalog and bindings, skipping validation, candidate search, and
    /// the `am_scancost` round trips. DDL invalidation clears the memo,
    /// and a memo that no longer matches the catalog (the index vanished
    /// between invalidation and replanning) falls back to fresh planning.
    fn plan(&self, txn: &Txn, table: &TableMeta, where_clause: Option<&Expr>) -> Result<Plan> {
        let compiled = self.current_compiled.lock().clone();
        let Some(compiled) = compiled else {
            return self.plan_fresh(txn, table, where_clause);
        };
        let cache = &self.db.inner.plan_cache;
        let memo = compiled.plan.lock().clone();
        if let Some(memo) = memo {
            // Index-vs-seq is a function of the bound values (a narrow
            // probe favors the index, a full-range one the heap sweep):
            // reuse the memo only for the bindings it was costed for,
            // until enough re-costs agree that the choice is generic.
            if memo.serves(where_clause) {
                if let Some(plan) = self.rebuild_plan(txn, &memo.choice, table, where_clause)? {
                    cache.hits.inc();
                    let counters = &self.db.inner.counters;
                    match &plan {
                        Plan::IndexScan { .. } => counters.plans_index.inc(),
                        Plan::SeqScan { .. } => counters.plans_seq.inc(),
                    }
                    self.scoped_trace()
                        .emit_with("EXPLAIN", 1, || format!("{}: plan: cached", table.name));
                    return Ok(plan);
                }
            }
        }
        cache.misses.inc();
        let plan = self.plan_fresh(txn, table, where_clause)?;
        self.scoped_trace()
            .emit_with("EXPLAIN", 1, || format!("{}: plan: fresh", table.name));
        let choice = match &plan {
            Plan::SeqScan { .. } => PlanChoice::Seq,
            Plan::IndexScan { index, .. } => PlanChoice::Index(index.clone()),
        };
        let mut slot = compiled.plan.lock();
        let streak = match &*slot {
            Some(prev) if prev.choice == choice => prev.streak + 1,
            _ => 0,
        };
        *slot = Some(prepare::PlanMemo {
            binding: where_clause.cloned(),
            choice,
            streak,
        });
        Ok(plan)
    }

    /// Rebuilds a concrete plan from a memoized choice. `None` when the
    /// choice no longer applies to the current catalog.
    fn rebuild_plan(
        &self,
        txn: &Txn,
        choice: &PlanChoice,
        table: &TableMeta,
        where_clause: Option<&Expr>,
    ) -> Result<Option<Plan>> {
        match choice {
            PlanChoice::Seq => Ok(Some(Plan::SeqScan {
                filter: where_clause.cloned(),
            })),
            PlanChoice::Index(name) => {
                let Some(expr) = where_clause else {
                    return Ok(None);
                };
                let ctx = self.ctx(txn);
                let fold = |e: &Expr, ty: Option<&DataType>| self.fold_expr(e, ty, &ctx).ok();
                let catalog = self.db.inner.catalog.lock();
                let opclasses = self.db.inner.opclasses.lock();
                let Ok(ix) = catalog.index(name) else {
                    return Ok(None);
                };
                if !ix.table.eq_ignore_ascii_case(&table.name) {
                    return Ok(None);
                }
                Ok(
                    planner::candidate_for(&opclasses, table, ix, expr, &fold).map(|c| {
                        Plan::IndexScan {
                            index: c.index,
                            qual: c.qual,
                            residual: c.residual,
                        }
                    }),
                )
            }
        }
    }

    /// Plans a WHERE clause for a table: validate, enumerate index
    /// candidates, cost them through `am_scancost`, choose.
    fn plan_fresh(
        &self,
        txn: &Txn,
        table: &TableMeta,
        where_clause: Option<&Expr>,
    ) -> Result<Plan> {
        if let Some(w) = where_clause {
            self.validate_expr(w, table)?;
        }
        let ctx = self.ctx(txn);
        let fold = |e: &Expr, ty: Option<&DataType>| self.fold_expr(e, ty, &ctx).ok();
        let cands: Vec<Candidate> = {
            let catalog = self.db.inner.catalog.lock();
            let opclasses = self.db.inner.opclasses.lock();
            planner::candidates(&catalog, &opclasses, table, where_clause, &fold)
        };
        let trace = self.scoped_trace();
        if cands.is_empty() {
            self.db.inner.counters.plans_seq.inc();
            trace.emit_with("EXPLAIN", 1, || {
                format!("{}: sequential scan (no index candidates)", table.name)
            });
            return Ok(Plan::SeqScan {
                filter: where_clause.cloned(),
            });
        }
        // The sequential baseline costs one pass over the heap. A
        // snapshot statement must size the heap from its frozen view —
        // opening the heap here would take the very S lock the snapshot
        // path exists to avoid.
        let seq_cost = match ctx.snapshot.as_deref() {
            Some(s) => heap::page_count(&s.reader(table.lo)?) as f64 + 1.0,
            None => {
                let h = self.open_heap(txn, table, false)?;
                heap::page_count(&h) as f64 + 1.0
            }
        };
        let mut costs = HashMap::new();
        for c in &cands {
            let (am, desc) = self.index_am(&c.index)?;
            self.trace_purpose(&am, "am_scancost");
            let cost = am
                .handler
                .am_scancost(&desc, &c.qual, &ctx)
                .unwrap_or(f64::MAX);
            trace.emit_with("EXPLAIN", 1, || {
                format!("{}: index {} cost {cost:.1}", table.name, c.index)
            });
            costs.insert(c.index.clone(), cost);
        }
        let plan = planner::choose(cands, |c| costs[&c.index], seq_cost, where_clause);
        match &plan {
            Plan::IndexScan { index, .. } => {
                self.db.inner.counters.plans_index.inc();
                trace.emit_with("EXPLAIN", 1, || {
                    format!(
                        "{}: chose index scan via {index} (seq cost {seq_cost:.1})",
                        table.name
                    )
                });
            }
            Plan::SeqScan { .. } => {
                self.db.inner.counters.plans_seq.inc();
                trace.emit_with("EXPLAIN", 1, || {
                    format!("{}: chose sequential scan (cost {seq_cost:.1})", table.name)
                });
            }
        }
        Ok(plan)
    }

    /// Runs a scan, invoking `sink` for each qualifying `(rowid, row)`.
    /// Returns the number of rows visited.
    fn scan(
        &self,
        txn: &Txn,
        table: &TableMeta,
        plan: &Plan,
        mut sink: impl FnMut(RowId, Vec<Value>) -> Result<bool>,
    ) -> Result<()> {
        let ctx = self.ctx(txn);
        // Snapshot statements read the heap through the frozen view —
        // no LO-level S lock; locked statements open the heap as before.
        let heap_src = |frozen: &mut Option<grt_sbspace::LoReader>,
                        locked: &mut Option<LoHandle>|
         -> Result<()> {
            match ctx.snapshot.as_deref() {
                Some(s) => *frozen = Some(s.reader(table.lo)?),
                None => *locked = Some(self.open_heap(txn, table, false)?),
            }
            Ok(())
        };
        match plan {
            Plan::SeqScan { filter } => {
                let (mut frozen, mut locked) = (None, None);
                heap_src(&mut frozen, &mut locked)?;
                let h: &dyn PageSource = match &frozen {
                    Some(r) => r,
                    None => locked.as_ref().expect("opened"),
                };
                let mut scan = heap::HeapScan::new();
                while let Some((rid, row)) = scan.next(&h)? {
                    let keep = match filter {
                        Some(f) => self.eval_expr(f, &row, table, &ctx)?.as_bool()?,
                        None => true,
                    };
                    if keep && !sink(rid, row)? {
                        break;
                    }
                }
                Ok(())
            }
            Plan::IndexScan {
                index,
                qual,
                residual,
            } => {
                let (am, desc) = self.index_am(index)?;
                let (mut frozen, mut locked) = (None, None);
                heap_src(&mut frozen, &mut locked)?;
                let h: &dyn PageSource = match &frozen {
                    Some(r) => r,
                    None => locked.as_ref().expect("opened"),
                };
                // The Figure 6(b) call sequence.
                self.trace_purpose(&am, "am_open");
                am.handler.am_open(&desc, &ctx)?;
                let mut scan = ScanDescriptor::new(qual.clone());
                self.trace_purpose(&am, "am_beginscan");
                am.handler.am_beginscan(&desc, &mut scan, &ctx)?;
                // Rows are pulled a batch at a time — one dynamic
                // dispatch per `scan_batch_rows` rows instead of one per
                // row. A short batch means the scan is exhausted.
                let batch = self.db.inner.scan_batch_rows;
                'batches: loop {
                    self.trace_purpose(&am, "am_getnext_batch");
                    let hits = am.handler.am_getnext_batch(&desc, &mut scan, batch, &ctx)?;
                    self.db.inner.batch_rows.observe_ns(hits.len() as u64);
                    let exhausted = hits.len() < batch;
                    for (rid, _keys) in hits {
                        // Fetch the base row; it may be gone under
                        // weaker isolation.
                        let Some(row) = heap::fetch(&h, rid)? else {
                            continue;
                        };
                        let keep = match residual {
                            Some(f) => self.eval_expr(f, &row, table, &ctx)?.as_bool()?,
                            None => true,
                        };
                        if keep && !sink(rid, row)? {
                            break 'batches;
                        }
                    }
                    if exhausted {
                        break;
                    }
                }
                self.trace_purpose(&am, "am_endscan");
                am.handler.am_endscan(&desc, &mut scan, &ctx)?;
                self.trace_purpose(&am, "am_close");
                am.handler.am_close(&desc, &ctx)?;
                Ok(())
            }
        }
    }

    fn select(
        &self,
        txn: &Txn,
        columns: SelectCols,
        table: String,
        where_clause: Option<Expr>,
    ) -> Result<QueryResult> {
        // System catalogs are queryable like tables (projection only).
        if table.to_ascii_lowercase().starts_with("sys") {
            if where_clause.is_some() {
                return Err(IdsError::Semantic(
                    "system catalogs support projection only".into(),
                ));
            }
            let (headers, rows) = self.db.catalog_dump(&table)?;
            let proj: Vec<usize> = match &columns {
                SelectCols::Star => (0..headers.len()).collect(),
                SelectCols::Named(cols) => cols
                    .iter()
                    .map(|c| {
                        headers
                            .iter()
                            .position(|h| h.eq_ignore_ascii_case(c))
                            .ok_or_else(|| IdsError::NotFound(format!("column {c} of {table}")))
                    })
                    .collect::<Result<Vec<_>>>()?,
            };
            let rows: Vec<Vec<Value>> = rows
                .into_iter()
                .map(|r| proj.iter().map(|&i| r[i].clone()).collect())
                .collect();
            let rendered = rows
                .iter()
                .map(|r| r.iter().map(|v| self.render_value(v)).collect())
                .collect();
            return Ok(QueryResult {
                columns: proj.iter().map(|&i| headers[i].clone()).collect(),
                rows,
                rendered,
                message: String::new(),
            });
        }
        let table_meta = self.db.inner.catalog.lock().table(&table)?.clone();
        let (headers, proj): (Vec<String>, Vec<usize>) = match &columns {
            SelectCols::Star => (
                table_meta.columns.iter().map(|(c, _)| c.clone()).collect(),
                (0..table_meta.columns.len()).collect(),
            ),
            SelectCols::Named(cols) => {
                let mut idx = Vec::new();
                for c in cols {
                    idx.push(table_meta.column_index(c)?);
                }
                (cols.clone(), idx)
            }
        };
        // Route the read: a snapshot statement plans and scans against a
        // frozen view (no LO-level locks at all); everything else keeps
        // the 2PL locked path. The choice is surfaced on the EXPLAIN
        // trace channel so plans are auditable.
        let snapshot = self.statement_snapshot(&table_meta);
        self.scoped_trace()
            .emit_with("EXPLAIN", 1, || match &snapshot {
                Some(s) => format!("{}: plan: snapshot (epoch {})", table_meta.name, s.epoch()),
                None => format!("{}: plan: locked", table_meta.name),
            });
        self.scoped_trace().emit_with("EXPLAIN", 1, || {
            let (workers, depth) = self.db.inner.space.prefetch_params();
            if workers > 0 {
                format!("{}: scan prefetch: on(depth={depth})", table_meta.name)
            } else {
                format!("{}: scan prefetch: off", table_meta.name)
            }
        });
        *self.active_snapshot.lock() = snapshot;
        let mut rows = Vec::new();
        let scanned = (|| {
            let plan = self.plan(txn, &table_meta, where_clause.as_ref())?;
            self.scan(txn, &table_meta, &plan, |_rid, row| {
                rows.push(proj.iter().map(|&i| row[i].clone()).collect::<Vec<_>>());
                Ok(true)
            })
        })();
        // The statement is over: stop handing the snapshot to access
        // methods whatever the outcome (the RR pin, if any, keeps its
        // own reference).
        *self.active_snapshot.lock() = None;
        scanned?;
        let rendered = rows
            .iter()
            .map(|r| r.iter().map(|v| self.render_value(v)).collect())
            .collect();
        Ok(QueryResult {
            columns: headers,
            rows,
            rendered,
            message: String::new(),
        })
    }

    fn delete(&self, txn: &Txn, table: String, where_clause: Option<Expr>) -> Result<QueryResult> {
        let table_meta = self.db.inner.catalog.lock().table(&table)?.clone();
        let plan = self.plan(txn, &table_meta, where_clause.as_ref())?;
        let ctx = self.ctx(txn);
        let count = match &plan {
            // The paper's Section 5.5 flow: qualifying entries are
            // retrieved with am_getnext and deleted one by one through
            // the SAME index descriptor, so the DataBlade's open cursor
            // and its restart-on-condense logic are exercised.
            Plan::IndexScan {
                index,
                qual,
                residual,
            } => {
                let (am, desc) = self.index_am(index)?;
                let scanned_cols: Vec<usize> = desc
                    .columns
                    .iter()
                    .map(|c| table_meta.column_index(c))
                    .collect::<Result<Vec<_>>>()?;
                let mut h = self.open_heap(txn, &table_meta, true)?;
                self.trace_purpose(&am, "am_open");
                am.handler.am_open(&desc, &ctx)?;
                let mut scan = ScanDescriptor::new(qual.clone());
                self.trace_purpose(&am, "am_beginscan");
                am.handler.am_beginscan(&desc, &mut scan, &ctx)?;
                let mut count = 0usize;
                // Victims are fetched a batch at a time through the open
                // cursor, then deleted through the SAME descriptor — the
                // deletes may condense the tree and restart the cursor,
                // which the next am_getnext_batch call must survive
                // without re-emitting rows.
                let batch = self.db.inner.scan_batch_rows;
                loop {
                    self.trace_purpose(&am, "am_getnext_batch");
                    let hits = am.handler.am_getnext_batch(&desc, &mut scan, batch, &ctx)?;
                    self.db.inner.batch_rows.observe_ns(hits.len() as u64);
                    let exhausted = hits.len() < batch;
                    for (rid, _keys) in hits {
                        let Some(row) = heap::fetch(&h, rid)? else {
                            continue;
                        };
                        let keep = match residual {
                            Some(f) => self.eval_expr(f, &row, &table_meta, &ctx)?.as_bool()?,
                            None => true,
                        };
                        if !keep {
                            continue;
                        }
                        heap::delete(&mut h, rid)?;
                        // The scanned index is maintained through the
                        // open descriptor (grt_delete resets the cursor
                        // if the tree condensed)...
                        let keys: Vec<Value> =
                            scanned_cols.iter().map(|&i| row[i].clone()).collect();
                        self.trace_purpose(&am, "am_delete");
                        am.handler.am_delete(&desc, &keys, rid, &ctx)?;
                        // ...other indexes of the table through their own.
                        self.for_each_index(&table_meta, |other_am, other_desc, keys_of| {
                            if other_desc.index_name == desc.index_name {
                                return Ok(());
                            }
                            let keys = keys_of(&row);
                            self.trace_purpose(other_am, "am_open");
                            other_am.handler.am_open(other_desc, &ctx)?;
                            self.trace_purpose(other_am, "am_delete");
                            other_am.handler.am_delete(other_desc, &keys, rid, &ctx)?;
                            self.trace_purpose(other_am, "am_close");
                            other_am.handler.am_close(other_desc, &ctx)
                        })?;
                        count += 1;
                    }
                    if exhausted {
                        break;
                    }
                }
                self.trace_purpose(&am, "am_endscan");
                am.handler.am_endscan(&desc, &mut scan, &ctx)?;
                self.trace_purpose(&am, "am_close");
                am.handler.am_close(&desc, &ctx)?;
                count
            }
            Plan::SeqScan { .. } => {
                let mut victims: Vec<(RowId, Vec<Value>)> = Vec::new();
                self.scan(txn, &table_meta, &plan, |rid, row| {
                    victims.push((rid, row));
                    Ok(true)
                })?;
                {
                    let mut h = self.open_heap(txn, &table_meta, true)?;
                    for (rid, _) in &victims {
                        heap::delete(&mut h, *rid)?;
                    }
                }
                for (rid, row) in &victims {
                    self.for_each_index(&table_meta, |am, desc, keys_of| {
                        let keys = keys_of(row);
                        self.trace_purpose(am, "am_open");
                        am.handler.am_open(desc, &ctx)?;
                        self.trace_purpose(am, "am_delete");
                        am.handler.am_delete(desc, &keys, *rid, &ctx)?;
                        self.trace_purpose(am, "am_close");
                        am.handler.am_close(desc, &ctx)
                    })?;
                }
                victims.len()
            }
        };
        Ok(msg(&format!("{count} rows deleted")))
    }

    fn update(
        &self,
        txn: &Txn,
        table: String,
        sets: Vec<(String, Expr)>,
        where_clause: Option<Expr>,
    ) -> Result<QueryResult> {
        let table_meta = self.db.inner.catalog.lock().table(&table)?.clone();
        let plan = self.plan(txn, &table_meta, where_clause.as_ref())?;
        let ctx = self.ctx(txn);
        let mut victims: Vec<(RowId, Vec<Value>)> = Vec::new();
        self.scan(txn, &table_meta, &plan, |rid, row| {
            victims.push((rid, row));
            Ok(true)
        })?;
        let mut set_idx = Vec::with_capacity(sets.len());
        for (col, expr) in &sets {
            let i = table_meta.column_index(col)?;
            set_idx.push((i, expr.clone()));
        }
        let count = victims.len();
        for (rid, old_row) in victims {
            let mut new_row = old_row.clone();
            for (i, expr) in &set_idx {
                let ty = &table_meta.columns[*i].1;
                // SET accepts any expression over the old row.
                let v = self
                    .eval_expr(expr, &old_row, &table_meta, &ctx)
                    .and_then(|v| self.coerce(v, ty))?;
                new_row[*i] = v;
            }
            let new_rid = {
                let mut h = self.open_heap(txn, &table_meta, true)?;
                heap::update(&mut h, rid, &new_row)?
            };
            self.for_each_index(&table_meta, |am, desc, keys_of| {
                let old_keys = keys_of(&old_row);
                let new_keys = keys_of(&new_row);
                self.trace_purpose(am, "am_open");
                am.handler.am_open(desc, &ctx)?;
                self.trace_purpose(am, "am_update");
                am.handler
                    .am_update(desc, &old_keys, rid, &new_keys, new_rid, &ctx)?;
                self.trace_purpose(am, "am_close");
                am.handler.am_close(desc, &ctx)
            })?;
        }
        Ok(msg(&format!("{count} rows updated")))
    }
}

fn compare(op: &str, l: &Value, r: &Value, conn: &Connection) -> Result<Value> {
    use std::cmp::Ordering as O;
    // Text compared against a date coerces to a date, mirroring the
    // insert-side coercions.
    let (l, r) = match (l, r) {
        (Value::Date(_), Value::Text(_)) => (l.clone(), conn.coerce(r.clone(), &DataType::Date)?),
        (Value::Text(_), Value::Date(_)) => (conn.coerce(l.clone(), &DataType::Date)?, r.clone()),
        _ => (l.clone(), r.clone()),
    };
    if l.is_null() || r.is_null() {
        return Ok(Value::Bool(false));
    }
    let ord: Option<O> = match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
        (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
        (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
        (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
        (
            Value::Opaque {
                bytes: a,
                type_name: ta,
            },
            Value::Opaque {
                bytes: b,
                type_name: tb,
            },
        ) if ta == tb && (op == "=" || op == "!=") => Some(a.cmp(b)),
        _ => None,
    };
    let Some(ord) = ord else {
        return Err(IdsError::Type(format!("cannot compare {l} {op} {r}")));
    };
    let b = match op {
        "=" => ord == O::Equal,
        "!=" => ord != O::Equal,
        "<" => ord == O::Less,
        "<=" => ord != O::Greater,
        ">" => ord == O::Greater,
        ">=" => ord != O::Less,
        other => return Err(IdsError::Semantic(format!("unknown operator {other}"))),
    };
    Ok(Value::Bool(b))
}

fn msg(text: &str) -> QueryResult {
    QueryResult {
        message: text.to_string(),
        ..Default::default()
    }
}

impl QueryResult {
    /// Formats a SELECT result as an aligned text table.
    pub fn to_table(&self) -> String {
        if self.columns.is_empty() {
            return self.message.clone();
        }
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in &self.rendered {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}
