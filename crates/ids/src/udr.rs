//! User-defined routines.
//!
//! Routines are registered with `CREATE FUNCTION ... EXTERNAL NAME
//! '<lib>(<symbol>)' LANGUAGE C`. In Informix the external name points
//! into a shared library; here the "shared library" is a registry of
//! native Rust closures that DataBlades install before running their
//! registration script — the same late-binding shape without `dlopen`.
//!
//! The paper's Section 5.2 complaint is reproduced too: the only
//! relationships the engine can record between routines are *negator*
//! and *commutator* — there is no way to tell the optimizer that
//! `Equal` implies `Overlaps`.

use crate::value::{DataType, Value};
use crate::vii::AmContext;
use crate::{IdsError, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// The native implementation of a routine.
pub type RoutineFn = Arc<dyn Fn(&[Value], &AmContext) -> Result<Value> + Send + Sync>;

/// A registered user-defined routine.
#[derive(Clone)]
pub struct Routine {
    /// SQL-visible name.
    pub name: String,
    /// Declared argument types.
    pub arg_types: Vec<DataType>,
    /// Declared return type.
    pub ret_type: DataType,
    /// The `EXTERNAL NAME` string it was registered with.
    pub external_name: String,
    /// The bound implementation.
    pub imp: RoutineFn,
    /// Name of the routine returning the opposite boolean, if declared.
    pub negator: Option<String>,
    /// Name of the routine equal under argument swap, if declared.
    pub commutator: Option<String>,
}

impl std::fmt::Debug for Routine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Routine")
            .field("name", &self.name)
            .field("args", &self.arg_types)
            .field("ret", &self.ret_type)
            .finish()
    }
}

/// The routine registry plus the "shared library" of native symbols.
#[derive(Default)]
pub struct UdrRegistry {
    /// Native symbols available for binding, keyed by
    /// `"library(symbol)"` exactly as written in `EXTERNAL NAME`.
    symbols: HashMap<String, RoutineFn>,
    /// Registered routines, keyed by lower-cased name. Overloads by
    /// argument types are kept in registration order.
    routines: HashMap<String, Vec<Routine>>,
}

impl UdrRegistry {
    /// Installs a native symbol (what loading a `.bld` library does).
    pub fn install_symbol(&mut self, external_name: &str, imp: RoutineFn) {
        self.symbols.insert(external_name.to_string(), imp);
    }

    /// Registers a routine (the `CREATE FUNCTION` statement), binding it
    /// to a previously installed symbol.
    pub fn create_function(
        &mut self,
        name: &str,
        arg_types: Vec<DataType>,
        ret_type: DataType,
        external_name: &str,
    ) -> Result<()> {
        let imp = self.symbols.get(external_name).cloned().ok_or_else(|| {
            IdsError::NotFound(format!("external symbol {external_name:?} not loaded"))
        })?;
        let key = name.to_ascii_lowercase();
        let overloads = self.routines.entry(key).or_default();
        if overloads.iter().any(|r| r.arg_types == arg_types) {
            return Err(IdsError::Duplicate(format!(
                "function {name}({arg_types:?})"
            )));
        }
        overloads.push(Routine {
            name: name.to_string(),
            arg_types,
            ret_type,
            external_name: external_name.to_string(),
            imp,
            negator: None,
            commutator: None,
        });
        Ok(())
    }

    /// Declares `negator` as the negator of `name` (both directions).
    pub fn set_negator(&mut self, name: &str, negator: &str) -> Result<()> {
        self.link(name, negator, true)
    }

    /// Declares `commutator` as the commutator of `name`.
    pub fn set_commutator(&mut self, name: &str, commutator: &str) -> Result<()> {
        self.link(name, commutator, false)
    }

    fn link(&mut self, a: &str, b: &str, negator: bool) -> Result<()> {
        for (x, y) in [(a, b), (b, a)] {
            let rs = self
                .routines
                .get_mut(&x.to_ascii_lowercase())
                .ok_or_else(|| IdsError::NotFound(format!("function {x}")))?;
            for r in rs {
                if negator {
                    r.negator = Some(y.to_string());
                } else {
                    r.commutator = Some(y.to_string());
                }
            }
        }
        Ok(())
    }

    /// Drops every overload of a function.
    pub fn drop_function(&mut self, name: &str) -> Result<()> {
        self.routines
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| IdsError::NotFound(format!("function {name}")))
    }

    /// Resolves a routine by name and argument types (exact overload
    /// match, falling back to the sole overload when unambiguous).
    pub fn resolve(&self, name: &str, arg_types: &[Option<DataType>]) -> Result<&Routine> {
        let overloads = self
            .routines
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| IdsError::NotFound(format!("function {name}")))?;
        let matches: Vec<&Routine> = overloads
            .iter()
            .filter(|r| {
                r.arg_types.len() == arg_types.len()
                    && r.arg_types
                        .iter()
                        .zip(arg_types)
                        .all(|(d, a)| a.as_ref().is_none_or(|t| t == d))
            })
            .collect();
        match matches.as_slice() {
            [one] => Ok(one),
            [] => Err(IdsError::NotFound(format!(
                "function {name} with argument types {arg_types:?}"
            ))),
            _ => Err(IdsError::Semantic(format!("ambiguous call to {name}"))),
        }
    }

    /// True when any overload of `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.routines.contains_key(&name.to_ascii_lowercase())
    }

    /// All registered routines (catalog dump).
    pub fn all(&self) -> Vec<&Routine> {
        let mut v: Vec<&Routine> = self.routines.values().flatten().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vii::AmContext;

    fn ctx() -> AmContext<'static> {
        AmContext::for_tests()
    }

    fn registry_with_add() -> UdrRegistry {
        let mut reg = UdrRegistry::default();
        reg.install_symbol(
            "mathlib.bld(add)",
            Arc::new(|args: &[Value], _ctx: &AmContext| match args {
                [Value::Int(a), Value::Int(b)] => Ok(Value::Int(a + b)),
                _ => Err(IdsError::Type("add(int, int)".into())),
            }),
        );
        reg.create_function(
            "Add",
            vec![DataType::Integer, DataType::Integer],
            DataType::Integer,
            "mathlib.bld(add)",
        )
        .unwrap();
        reg
    }

    #[test]
    fn create_and_invoke() {
        let reg = registry_with_add();
        let r = reg
            .resolve("add", &[Some(DataType::Integer), Some(DataType::Integer)])
            .unwrap();
        let v = (r.imp)(&[Value::Int(2), Value::Int(3)], &ctx()).unwrap();
        assert_eq!(v, Value::Int(5));
    }

    #[test]
    fn unknown_symbol_rejected() {
        let mut reg = UdrRegistry::default();
        let err = reg
            .create_function("F", vec![], DataType::Integer, "nolib(bad)")
            .unwrap_err();
        assert!(matches!(err, IdsError::NotFound(_)));
    }

    #[test]
    fn duplicate_signature_rejected() {
        let mut reg = registry_with_add();
        let err = reg
            .create_function(
                "add",
                vec![DataType::Integer, DataType::Integer],
                DataType::Integer,
                "mathlib.bld(add)",
            )
            .unwrap_err();
        assert!(matches!(err, IdsError::Duplicate(_)));
    }

    #[test]
    fn overloads_resolve_by_types() {
        let mut reg = registry_with_add();
        reg.install_symbol(
            "mathlib.bld(addtext)",
            Arc::new(|_args: &[Value], _| Ok(Value::Text("cat".into()))),
        );
        reg.create_function(
            "add",
            vec![DataType::Text, DataType::Text],
            DataType::Text,
            "mathlib.bld(addtext)",
        )
        .unwrap();
        let int_overload = reg
            .resolve("add", &[Some(DataType::Integer), Some(DataType::Integer)])
            .unwrap();
        assert_eq!(int_overload.ret_type, DataType::Integer);
        let text_overload = reg
            .resolve("ADD", &[Some(DataType::Text), Some(DataType::Text)])
            .unwrap();
        assert_eq!(text_overload.ret_type, DataType::Text);
        // Unknown argument types with two overloads: ambiguous.
        assert!(matches!(
            reg.resolve("add", &[None, None]),
            Err(IdsError::Semantic(_))
        ));
    }

    #[test]
    fn negator_and_commutator_links() {
        let mut reg = registry_with_add();
        reg.install_symbol(
            "mathlib.bld(sub)",
            Arc::new(|_args: &[Value], _| Ok(Value::Int(0))),
        );
        reg.create_function(
            "Sub",
            vec![DataType::Integer, DataType::Integer],
            DataType::Integer,
            "mathlib.bld(sub)",
        )
        .unwrap();
        reg.set_commutator("Add", "Sub").unwrap();
        let r = reg
            .resolve("add", &[Some(DataType::Integer), Some(DataType::Integer)])
            .unwrap();
        assert_eq!(r.commutator.as_deref(), Some("Sub"));
        assert!(reg.set_negator("Add", "Nope").is_err());
    }

    #[test]
    fn drop_function_removes() {
        let mut reg = registry_with_add();
        reg.drop_function("ADD").unwrap();
        assert!(!reg.exists("add"));
        assert!(reg.drop_function("add").is_err());
    }
}
