//! Prepared statements and the per-database plan cache.
//!
//! Statement execution is phased — **parse → verify/resolve → plan →
//! execute** — and the first three phases are cached in a
//! [`CompiledStatement`]. Two kinds of compiled statement exist:
//!
//! * **`PREPARE`d handles**: owned by their connection, addressed by
//!   name with `EXECUTE`, parameterized with explicit `?` slots. The
//!   cache holds only a [`Weak`] reference so DDL invalidation reaches
//!   them without keeping them alive past `DEALLOCATE` / disconnect.
//! * **Transparent entries**: ad-hoc DML is normalized (literals lifted
//!   to parameters, identifiers uppercased) and keyed by the normalized
//!   text, so repeated statements that differ only in their constants
//!   share one compiled form. Capacity is bounded by
//!   `DatabaseOptions { plan_cache_size }` with LRU eviction.
//!
//! The plan phase memoizes only the access-path *choice*
//! ([`PlanChoice`]), tagged with the bound WHERE clause it was costed
//! for: index-vs-seq depends on the actual values (a narrow probe
//! favors the index, a full-range probe the heap sweep), so a memo is
//! reused only when the planning-relevant bindings match — until
//! [`GENERIC_AFTER`] consecutive re-costs under *different* bindings
//! all picked the same choice, at which point the memo goes *generic*
//! and is reused for any binding (the custom-vs-generic plan rule).
//! The concrete `Plan` is rebuilt per execution against the live
//! catalog either way. DDL touching a statement's tables clears the
//! memo (and drops transparent entries entirely, so parameter types
//! are re-inferred against the new schema).

use crate::sql::{Expr, Statement};
use crate::value::{DataType, Value};
use crate::{IdsError, Result};
use grt_metrics::{Counter, Metrics};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, Weak};

/// The memoized access-path decision of a compiled statement.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum PlanChoice {
    /// Sequential heap scan.
    Seq,
    /// Scan of the named index.
    Index(String),
}

/// Consecutive fresh plans that must agree on the choice before the
/// memo is reused for arbitrary bindings.
pub(crate) const GENERIC_AFTER: u32 = 3;

/// A memoized plan choice and the evidence it rests on.
#[derive(Debug, Clone)]
pub(crate) struct PlanMemo {
    /// The bound WHERE clause the choice was last costed for.
    pub binding: Option<Expr>,
    /// The access path chosen.
    pub choice: PlanChoice,
    /// Consecutive fresh plans (over differing bindings) that agreed
    /// on `choice`.
    pub streak: u32,
}

impl PlanMemo {
    /// Whether this memo may serve the given WHERE clause.
    pub fn serves(&self, where_clause: Option<&Expr>) -> bool {
        self.streak >= GENERIC_AFTER || self.binding.as_ref() == where_clause
    }
}

/// A statement carried through parse and verify/resolve, with its plan
/// choice memoized after the first execution.
pub(crate) struct CompiledStatement {
    /// Normalized-text cache key (`None` for `PREPARE`d handles, which
    /// live on the connection rather than in the keyed map).
    pub key: Option<String>,
    /// The parameterized statement.
    pub stmt: Statement,
    /// Number of positional parameter slots.
    pub n_params: usize,
    /// Inferred slot types; `None` slots accept any value and are
    /// checked only when the executor folds them.
    pub param_types: Vec<Option<DataType>>,
    /// Lower-cased names of the tables the statement touches — the
    /// invalidation scope.
    pub tables: Vec<String>,
    /// The memoized plan choice (see [`PlanMemo`]); cleared by DDL
    /// invalidation.
    pub plan: Mutex<Option<PlanMemo>>,
}

impl CompiledStatement {
    fn touches(&self, table: &str) -> bool {
        self.tables.iter().any(|t| t == table)
    }
}

struct CacheInner {
    capacity: usize,
    /// Monotonic use clock for LRU.
    tick: u64,
    /// Normalized key → (last-use tick, compiled statement).
    map: HashMap<String, (u64, Arc<CompiledStatement>)>,
    /// `PREPARE`d handles, weakly referenced for invalidation.
    prepared: Vec<Weak<CompiledStatement>>,
}

/// The per-database plan cache (transparent entries plus the weak
/// registry of `PREPARE`d handles) and its counters.
pub(crate) struct PlanCache {
    inner: Mutex<CacheInner>,
    /// Plan resolutions served from a memoized choice.
    pub hits: Counter,
    /// Plan resolutions that ran the full planner.
    pub misses: Counter,
    /// Transparent entries dropped by LRU capacity.
    pub evictions: Counter,
    /// Compiled statements invalidated by DDL.
    pub invalidations: Counter,
}

impl PlanCache {
    pub fn new(capacity: usize, metrics: &Metrics) -> PlanCache {
        PlanCache {
            inner: Mutex::new(CacheInner {
                capacity,
                tick: 0,
                map: HashMap::new(),
                prepared: Vec::new(),
            }),
            hits: metrics.counter("ids.plan_cache_hits"),
            misses: metrics.counter("ids.plan_cache_misses"),
            evictions: metrics.counter("ids.plan_cache_evictions"),
            invalidations: metrics.counter("ids.plan_cache_invalidations"),
        }
    }

    /// Looks up a compiled statement by normalized key (touches LRU).
    pub fn get(&self, key: &str) -> Option<Arc<CompiledStatement>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(key).map(|slot| {
            slot.0 = tick;
            Arc::clone(&slot.1)
        })
    }

    /// Inserts a compiled statement under its key, evicting the least
    /// recently used entries beyond capacity. Capacity `0` disables the
    /// transparent cache entirely (the compile-every-time ablation);
    /// `PREPARE`d handles are unaffected.
    pub fn insert(&self, compiled: Arc<CompiledStatement>) {
        let Some(key) = compiled.key.clone() else {
            return;
        };
        let mut inner = self.inner.lock();
        if inner.capacity == 0 {
            return;
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key, (tick, compiled));
        while inner.map.len() > inner.capacity {
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone());
            match oldest {
                Some(k) => {
                    inner.map.remove(&k);
                    self.evictions.inc();
                }
                None => break,
            }
        }
    }

    /// Registers a `PREPARE`d handle for DDL invalidation.
    pub fn register(&self, compiled: &Arc<CompiledStatement>) {
        let mut inner = self.inner.lock();
        inner.prepared.retain(|w| w.strong_count() > 0);
        inner.prepared.push(Arc::downgrade(compiled));
    }

    /// Live `PREPARE`d handles (the stress harness's leak check).
    pub fn live_prepared(&self) -> usize {
        self.inner
            .lock()
            .prepared
            .iter()
            .filter(|w| w.strong_count() > 0)
            .count()
    }

    /// Transparent entries currently cached (test hook).
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Invalidates every compiled statement touching `table`:
    /// transparent entries are dropped (parameter types re-infer against
    /// the new schema), prepared handles lose their memoized plan.
    pub fn invalidate_table(&self, table: &str) {
        let table = table.to_ascii_lowercase();
        self.invalidate_where(|c| c.touches(&table));
    }

    /// Invalidates everything — routine, opclass, or access-method DDL
    /// can change any plan.
    pub fn invalidate_all(&self) {
        self.invalidate_where(|_| true);
    }

    fn invalidate_where(&self, hit: impl Fn(&CompiledStatement) -> bool) {
        let mut inner = self.inner.lock();
        let doomed: Vec<String> = inner
            .map
            .iter()
            .filter(|(_, (_, c))| hit(c))
            .map(|(k, _)| k.clone())
            .collect();
        for k in doomed {
            inner.map.remove(&k);
            self.invalidations.inc();
        }
        inner.prepared.retain(|w| match w.upgrade() {
            Some(c) => {
                if hit(&c) && c.plan.lock().take().is_some() {
                    self.invalidations.inc();
                }
                true
            }
            None => false,
        });
    }
}

/// Substitutes bound values for the `?` placeholders of a compiled
/// statement, producing an executable statement.
pub(crate) fn bind(stmt: &Statement, args: &[Value]) -> Result<Statement> {
    fn bind_expr(e: &Expr, args: &[Value]) -> Result<Expr> {
        Ok(match e {
            Expr::Param(i) => Expr::Bound(args.get(*i).cloned().ok_or_else(|| {
                IdsError::Type(format!("parameter {} has no bound value", i + 1))
            })?),
            Expr::Call { name, args: a } => Expr::Call {
                name: name.clone(),
                args: a
                    .iter()
                    .map(|x| bind_expr(x, args))
                    .collect::<Result<_>>()?,
            },
            Expr::Cmp { op, left, right } => Expr::Cmp {
                op: op.clone(),
                left: Box::new(bind_expr(left, args)?),
                right: Box::new(bind_expr(right, args)?),
            },
            Expr::And(p) => Expr::And(
                p.iter()
                    .map(|x| bind_expr(x, args))
                    .collect::<Result<_>>()?,
            ),
            Expr::Or(p) => Expr::Or(
                p.iter()
                    .map(|x| bind_expr(x, args))
                    .collect::<Result<_>>()?,
            ),
            Expr::Not(inner) => Expr::Not(Box::new(bind_expr(inner, args)?)),
            other => other.clone(),
        })
    }
    Ok(match stmt {
        Statement::Insert { table, values } => Statement::Insert {
            table: table.clone(),
            values: values
                .iter()
                .map(|v| bind_expr(v, args))
                .collect::<Result<_>>()?,
        },
        Statement::Select {
            columns,
            table,
            where_clause,
        } => Statement::Select {
            columns: columns.clone(),
            table: table.clone(),
            where_clause: where_clause
                .as_ref()
                .map(|w| bind_expr(w, args))
                .transpose()?,
        },
        Statement::Delete {
            table,
            where_clause,
        } => Statement::Delete {
            table: table.clone(),
            where_clause: where_clause
                .as_ref()
                .map(|w| bind_expr(w, args))
                .transpose()?,
        },
        Statement::Update {
            table,
            sets,
            where_clause,
        } => Statement::Update {
            table: table.clone(),
            sets: sets
                .iter()
                .map(|(c, e)| Ok((c.clone(), bind_expr(e, args)?)))
                .collect::<Result<_>>()?,
            where_clause: where_clause
                .as_ref()
                .map(|w| bind_expr(w, args))
                .transpose()?,
        },
        other => other.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql;
    use grt_metrics::Metrics;

    fn compiled(key: &str, table: &str) -> Arc<CompiledStatement> {
        Arc::new(CompiledStatement {
            key: Some(key.to_string()),
            stmt: sql::parse(&format!("SELECT * FROM {table}")).unwrap(),
            n_params: 0,
            param_types: vec![],
            tables: vec![table.to_string()],
            plan: Mutex::new(Some(PlanMemo {
                binding: None,
                choice: PlanChoice::Seq,
                streak: 0,
            })),
        })
    }

    #[test]
    fn lru_evicts_oldest() {
        let metrics = Metrics::default();
        let cache = PlanCache::new(2, &metrics);
        cache.insert(compiled("a", "t"));
        cache.insert(compiled("b", "t"));
        assert!(cache.get("a").is_some()); // touch a: b is now oldest
        cache.insert(compiled("c", "t"));
        assert_eq!(cache.evictions.get(), 1);
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn invalidation_scopes_to_tables() {
        let metrics = Metrics::default();
        let cache = PlanCache::new(8, &metrics);
        cache.insert(compiled("a", "t"));
        cache.insert(compiled("b", "u"));
        let handle = compiled("", "t");
        cache.register(&handle);
        assert_eq!(cache.live_prepared(), 1);
        cache.invalidate_table("T");
        // The t-entry is dropped, the u-entry survives, the prepared
        // handle stays registered but loses its memoized plan.
        assert!(cache.get("a").is_none());
        assert!(cache.get("b").is_some());
        assert!(handle.plan.lock().is_none());
        assert_eq!(cache.invalidations.get(), 2);
        drop(handle);
        assert_eq!(cache.live_prepared(), 0);
    }

    #[test]
    fn bind_substitutes_params() {
        let stmt = sql::parse("SELECT * FROM t WHERE id = ? AND f(c, ?)").unwrap();
        let bound = bind(&stmt, &[Value::Int(7), Value::Text("q".into())]).unwrap();
        let Statement::Select {
            where_clause: Some(Expr::And(parts)),
            ..
        } = bound
        else {
            panic!()
        };
        assert_eq!(
            parts[0],
            Expr::Cmp {
                op: "=".into(),
                left: Box::new(Expr::Column("id".into())),
                right: Box::new(Expr::Bound(Value::Int(7))),
            }
        );
        // Missing binding is an error, not a panic.
        assert!(bind(&stmt, &[Value::Int(7)]).is_err());
    }
}
