//! A miniature extensible relational engine — the stand-in for the
//! "Informix Dynamic Server with Universal Data Option" that hosts the
//! GR-tree DataBlade.
//!
//! The paper's subject is not Informix's internals but its *extension
//! surface*, and that surface is reproduced here faithfully:
//!
//! * **opaque data types** with type support functions (text input/
//!   output, binary send/receive, file import/export) — Section 6.3;
//! * **user-defined routines** (UDRs) registered with
//!   `CREATE FUNCTION`, with negator/commutator metadata — Section 5.2;
//! * **operator classes** binding strategy and support functions to an
//!   access method — Section 4, step 4;
//! * **secondary access methods**: the full purpose-function interface
//!   of Table 2 (`am_create` … `am_check`) with index, scan, and
//!   qualification descriptors, where the qualification descriptor is
//!   restricted to *single-column* predicates — the restriction that
//!   forced the one-column `GRT_TimeExtent_t` design (Section 5.1);
//! * **system catalogs** (`SYSAMS`, `SYSINDICES`, `SYSFRAGMENTS`,
//!   `SYSOPCLASSES`, `SYSPROCEDURES`, `SYSTABLES`);
//! * a **query planner** that matches WHERE-clause functions against
//!   strategy functions and uses `am_scancost` to pick an access path;
//! * disk-resident **heap tables** over sbspace large objects, so
//!   transactions, recovery, and I/O accounting cover base tables too;
//! * **sessions** with named memory and durations, **transactions**
//!   with end-of-transaction callbacks (Section 5.4), and the **trace**
//!   facility of Section 6.4 (trace classes and levels);
//! * a small **SQL dialect** covering every statement the paper quotes.
//!
//! ```
//! use grt_ids::{Database, DatabaseOptions, Value};
//!
//! let db = Database::new(DatabaseOptions::default());
//! let conn = db.connect();
//! conn.exec("CREATE TABLE t (n integer, s text)").unwrap();
//! conn.exec("INSERT INTO t VALUES (1, 'one')").unwrap();
//! conn.exec("INSERT INTO t VALUES (2, 'two')").unwrap();
//! let r = conn.exec("SELECT s FROM t WHERE n = 2").unwrap();
//! assert_eq!(r.rows, vec![vec![Value::Text("two".into())]]);
//! ```

pub mod catalog;
pub mod engine;
pub mod heap;
pub mod opaque;
pub mod opclass;
pub mod planner;
pub(crate) mod prepare;
pub mod session;
pub mod sql;
pub mod trace;
pub mod udr;
pub mod value;
pub mod vii;

pub use engine::{Connection, Database, DatabaseOptions, QueryResult};
pub use session::{MemDuration, Session};
pub use trace::{TraceEvent, TraceSink};
pub use value::{DataType, Value};
pub use vii::{
    AccessMethod, AmContext, IndexDescriptor, QualDescriptor, RowId, ScanDescriptor, SimpleQual,
};

/// Errors from the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdsError {
    /// Storage-layer failure.
    Storage(grt_sbspace::SbError),
    /// SQL syntax error.
    Parse(String),
    /// Unknown table/column/function/type/index/access method.
    NotFound(String),
    /// Name already registered.
    Duplicate(String),
    /// Type mismatch or bad value.
    Type(String),
    /// Constraint or semantic violation.
    Semantic(String),
    /// A user-defined routine failed.
    Routine(String),
    /// Access-method failure.
    AccessMethod(String),
}

impl From<grt_sbspace::SbError> for IdsError {
    fn from(e: grt_sbspace::SbError) -> Self {
        IdsError::Storage(e)
    }
}

impl std::fmt::Display for IdsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdsError::Storage(e) => write!(f, "storage: {e}"),
            IdsError::Parse(m) => write!(f, "syntax error: {m}"),
            IdsError::NotFound(m) => write!(f, "not found: {m}"),
            IdsError::Duplicate(m) => write!(f, "already exists: {m}"),
            IdsError::Type(m) => write!(f, "type error: {m}"),
            IdsError::Semantic(m) => write!(f, "semantic error: {m}"),
            IdsError::Routine(m) => write!(f, "routine error: {m}"),
            IdsError::AccessMethod(m) => write!(f, "access method error: {m}"),
        }
    }
}

impl std::error::Error for IdsError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, IdsError>;
