//! The engine's value and type system, including opaque values.

use crate::{IdsError, Result};
use grt_temporal::Day;

/// Column data types. `Opaque` types are declared by DataBlades
/// (Section 4, step 1) and interpreted only through their registered
/// support functions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit integer (`mi_integer`-ish).
    Integer,
    /// Variable-length text.
    Text,
    /// Day-granularity date (the built-in `DATE`).
    Date,
    /// Boolean (`mi_boolean`).
    Boolean,
    /// A DataBlade-defined opaque type, by name.
    Opaque(String),
}

impl DataType {
    /// Parses a type name as written in SQL.
    pub fn parse(name: &str) -> DataType {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" => DataType::Integer,
            "TEXT" | "VARCHAR" | "CHAR" | "LVARCHAR" => DataType::Text,
            "DATE" => DataType::Date,
            "BOOLEAN" | "BOOL" => DataType::Boolean,
            _ => DataType::Opaque(name.to_string()),
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataType::Integer => write!(f, "INTEGER"),
            DataType::Text => write!(f, "TEXT"),
            DataType::Date => write!(f, "DATE"),
            DataType::Boolean => write!(f, "BOOLEAN"),
            DataType::Opaque(n) => write!(f, "{n}"),
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer value.
    Int(i64),
    /// Text value.
    Text(String),
    /// Date value.
    Date(Day),
    /// Boolean value.
    Bool(bool),
    /// An opaque value: the type name plus its internal representation
    /// (the bytes only the DataBlade's support functions understand).
    Opaque {
        /// The opaque type's name.
        type_name: String,
        /// The internal binary representation.
        bytes: Vec<u8>,
    },
}

impl Value {
    /// The value's type, when determinable (`Null` has none).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Integer),
            Value::Text(_) => Some(DataType::Text),
            Value::Date(_) => Some(DataType::Date),
            Value::Bool(_) => Some(DataType::Boolean),
            Value::Opaque { type_name, .. } => Some(DataType::Opaque(type_name.clone())),
        }
    }

    /// True for SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extracts a boolean (for WHERE evaluation).
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Null => Ok(false),
            other => Err(IdsError::Type(format!("expected boolean, got {other}"))),
        }
    }

    /// Serialises into `out` (the heap row codec).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Int(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::Text(s) => {
                out.push(2);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Date(d) => {
                out.push(3);
                out.extend_from_slice(&d.0.to_le_bytes());
            }
            Value::Bool(b) => {
                out.push(4);
                out.push(*b as u8);
            }
            Value::Opaque { type_name, bytes } => {
                out.push(5);
                out.push(type_name.len() as u8);
                out.extend_from_slice(type_name.as_bytes());
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
            }
        }
    }

    /// Deserialises one value, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Value> {
        let bad = || IdsError::Type("truncated row".into());
        let tag = *buf.get(*pos).ok_or_else(bad)?;
        *pos += 1;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            let s = buf.get(*pos..*pos + n).ok_or_else(bad)?;
            *pos += n;
            Ok(s)
        };
        match tag {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(i64::from_le_bytes(
                take(pos, 8)?.try_into().unwrap(),
            ))),
            2 => {
                let len = u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()) as usize;
                let bytes = take(pos, len)?;
                Ok(Value::Text(
                    String::from_utf8(bytes.to_vec())
                        .map_err(|_| IdsError::Type("bad utf8 in row".into()))?,
                ))
            }
            3 => Ok(Value::Date(Day(i32::from_le_bytes(
                take(pos, 4)?.try_into().unwrap(),
            )))),
            4 => Ok(Value::Bool(take(pos, 1)?[0] != 0)),
            5 => {
                let nlen = take(pos, 1)?[0] as usize;
                let type_name = String::from_utf8(take(pos, nlen)?.to_vec())
                    .map_err(|_| IdsError::Type("bad utf8 in type name".into()))?;
                let len = u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()) as usize;
                let bytes = take(pos, len)?.to_vec();
                Ok(Value::Opaque { type_name, bytes })
            }
            other => Err(IdsError::Type(format!("unknown value tag {other}"))),
        }
    }

    /// Serialises a whole row.
    pub fn encode_row(row: &[Value]) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 * row.len() + 2);
        out.extend_from_slice(&(row.len() as u16).to_le_bytes());
        for v in row {
            v.encode(&mut out);
        }
        out
    }

    /// Deserialises a whole row.
    pub fn decode_row(buf: &[u8]) -> Result<Vec<Value>> {
        if buf.len() < 2 {
            return Err(IdsError::Type("truncated row header".into()));
        }
        let n = u16::from_le_bytes(buf[0..2].try_into().unwrap()) as usize;
        let mut pos = 2;
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(Value::decode(buf, &mut pos)?);
        }
        Ok(row)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Bool(b) => write!(f, "{}", if *b { "t" } else { "f" }),
            Value::Opaque { type_name, bytes } => {
                write!(f, "<{type_name}:{} bytes>", bytes.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_codec_roundtrip() {
        let row = vec![
            Value::Null,
            Value::Int(-42),
            Value::Text("Bliujūtė".into()),
            Value::Date(Day(9999)),
            Value::Bool(true),
            Value::Opaque {
                type_name: "GRT_TimeExtent_t".into(),
                bytes: vec![1, 2, 3, 4],
            },
        ];
        let bytes = Value::encode_row(&row);
        assert_eq!(Value::decode_row(&bytes).unwrap(), row);
    }

    #[test]
    fn truncated_rows_error() {
        let row = vec![Value::Text("hello".into())];
        let bytes = Value::encode_row(&row);
        for cut in 0..bytes.len() {
            assert!(Value::decode_row(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn type_parse() {
        assert_eq!(DataType::parse("integer"), DataType::Integer);
        assert_eq!(DataType::parse("LVARCHAR"), DataType::Text);
        assert_eq!(DataType::parse("date"), DataType::Date);
        assert_eq!(
            DataType::parse("GRT_TimeExtent_t"),
            DataType::Opaque("GRT_TimeExtent_t".into())
        );
    }

    #[test]
    fn as_bool_semantics() {
        assert!(Value::Bool(true).as_bool().unwrap());
        assert!(!Value::Null.as_bool().unwrap());
        assert!(Value::Int(1).as_bool().is_err());
    }
}
