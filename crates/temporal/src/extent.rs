//! The 4TS time extent — the value stored in the `GRT_TimeExtent_t`
//! opaque column.
//!
//! A [`TimeExtent`] carries the four timestamps `TTbegin`, `TTend`,
//! `VTbegin`, `VTend` of the TQuel four-timestamp format (the paper's
//! Section 2), with `UC` allowed for `TTend` and `NOW` for `VTend`. The
//! type enforces the paper's insertion and deletion constraints, knows
//! its qualitative case (the paper's Figure 2), converts to and from the
//! textual representation used in SQL literals
//! (`"12/10/95, UC, 12/10/95, NOW"`), and has a fixed 16-byte binary
//! codec used for index pages and on-disk rows.

use crate::day::Day;
use crate::region::Region;
use crate::value::{RegionSpec, TtEnd, VtEnd};
use crate::{Result, TemporalError};

/// Sentinel day numbers for the variables in the binary codec. These are
/// outside [`Day::MIN`], [`Day::MAX`].
const UC_SENTINEL: i32 = i32::MAX;
const NOW_SENTINEL: i32 = i32::MAX;

/// The six qualitative combinations of the four timestamps — the paper's
/// Figure 2 (and the six region shapes of its Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Case {
    /// `(tt1, UC, vt1, vt2)` — rectangle growing in transaction time.
    Case1,
    /// `(tt1, tt2, vt1, vt2)` — static rectangle.
    Case2,
    /// `(tt1, UC, vt1, NOW)`, `tt1 = vt1` — growing stair.
    Case3,
    /// `(tt1, tt2, vt1, NOW)`, `tt1 = vt1` — stair that stopped growing.
    Case4,
    /// `(tt1, UC, vt1, NOW)`, `tt1 > vt1` — growing stair with a high
    /// first step.
    Case5,
    /// `(tt1, tt2, vt1, NOW)`, `tt1 > vt1` — stopped stair with a high
    /// first step.
    Case6,
}

impl std::fmt::Display for Case {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = match self {
            Case::Case1 => 1,
            Case::Case2 => 2,
            Case::Case3 => 3,
            Case::Case4 => 4,
            Case::Case5 => 5,
            Case::Case6 => 6,
        };
        write!(f, "Case {n}")
    }
}

/// A bitemporal time extent in the four-timestamp format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeExtent {
    /// When the tuple became current in the database.
    pub tt_begin: Day,
    /// When the tuple ceased to be current (or `UC`).
    pub tt_end: TtEnd,
    /// When the fact became true in the modeled reality.
    pub vt_begin: Day,
    /// When the fact ceased to be true (or `NOW`).
    pub vt_end: VtEnd,
}

impl TimeExtent {
    /// Size of the binary encoding in bytes.
    pub const ENCODED_LEN: usize = 16;

    /// Constructs an extent from raw parts, checking only the structural
    /// constraints that hold for *stored* data (begin ≤ end for ground
    /// ends; `vt_begin <= tt_begin` when `VTend` is `NOW`). Use
    /// [`TimeExtent::insert`] for the full insertion-time constraints.
    pub fn from_parts(
        tt_begin: Day,
        tt_end: TtEnd,
        vt_begin: Day,
        vt_end: VtEnd,
    ) -> Result<TimeExtent> {
        let e = TimeExtent {
            tt_begin,
            tt_end,
            vt_begin,
            vt_end,
        };
        if let TtEnd::Ground(t) = tt_end {
            if tt_begin > t {
                return Err(TemporalError::Constraint(format!(
                    "TTbegin {tt_begin} > TTend {t}"
                )));
            }
        }
        match vt_end {
            VtEnd::Ground(v) => {
                if vt_begin > v {
                    return Err(TemporalError::Constraint(format!(
                        "VTbegin {vt_begin} > VTend {v}"
                    )));
                }
            }
            VtEnd::Now => {
                if vt_begin > tt_begin {
                    return Err(TemporalError::Constraint(format!(
                        "VTend = NOW requires VTbegin {vt_begin} <= TTbegin {tt_begin}"
                    )));
                }
            }
        }
        Ok(e)
    }

    /// Creates the extent of a freshly inserted tuple at current time
    /// `ct`, enforcing the paper's insertion constraints:
    /// `TTbegin = ct`, `TTend = UC`, `VTbegin <= VTend` for ground ends,
    /// and `VTbegin <= ct` when `VTend = NOW`.
    pub fn insert(ct: Day, vt_begin: Day, vt_end: VtEnd) -> Result<TimeExtent> {
        if let VtEnd::Now = vt_end {
            if vt_begin > ct {
                return Err(TemporalError::Constraint(format!(
                    "insertion with VTend = NOW requires VTbegin {vt_begin} <= current time {ct}"
                )));
            }
        }
        TimeExtent::from_parts(ct, TtEnd::Uc, vt_begin, vt_end)
    }

    /// Logically deletes a current tuple at current time `ct`: replaces
    /// `UC` with `ct - 1` (closed intervals, the paper's footnote 2).
    /// Fails if the tuple is not current.
    pub fn logical_delete(&self, ct: Day) -> Result<TimeExtent> {
        match self.tt_end {
            TtEnd::Uc => TimeExtent::from_parts(
                self.tt_begin,
                TtEnd::Ground(ct.pred()),
                self.vt_begin,
                self.vt_end,
            ),
            TtEnd::Ground(_) => Err(TemporalError::Constraint(
                "cannot delete a tuple that is not current".into(),
            )),
        }
    }

    /// True while the tuple is part of the current database state.
    pub fn is_current(&self) -> bool {
        self.tt_end.is_uc()
    }

    /// True when either end tracks the current time.
    pub fn is_now_relative(&self) -> bool {
        self.tt_end.is_uc() || self.vt_end.is_now()
    }

    /// The qualitative case of the paper's Figure 2.
    pub fn case(&self) -> Case {
        match (self.tt_end, self.vt_end) {
            (TtEnd::Uc, VtEnd::Ground(_)) => Case::Case1,
            (TtEnd::Ground(_), VtEnd::Ground(_)) => Case::Case2,
            (TtEnd::Uc, VtEnd::Now) => {
                if self.tt_begin == self.vt_begin {
                    Case::Case3
                } else {
                    Case::Case5
                }
            }
            (TtEnd::Ground(_), VtEnd::Now) => {
                if self.tt_begin == self.vt_begin {
                    Case::Case4
                } else {
                    Case::Case6
                }
            }
        }
    }

    /// The unresolved region descriptor of this extent (a leaf-entry
    /// spec: no flags).
    pub fn spec(&self) -> RegionSpec {
        RegionSpec::leaf(self.tt_begin, self.tt_end, self.vt_begin, self.vt_end)
    }

    /// The exact region at current time `ct`.
    pub fn region(&self, ct: Day) -> Region {
        self.spec().resolve(ct)
    }

    /// Parses the textual representation used in the paper's SQL
    /// examples: four comma-separated fields
    /// `TTbegin, TTend|UC, VTbegin, VTend|NOW`, each a date in
    /// `mm/dd/yy[yy]` or `m/yy[yy]` form.
    pub fn parse(text: &str) -> Result<TimeExtent> {
        let parts: Vec<&str> = text.split(',').map(str::trim).collect();
        if parts.len() != 4 {
            return Err(TemporalError::Parse(format!(
                "expected 4 comma-separated timestamps, got {} in {text:?}",
                parts.len()
            )));
        }
        let tt_begin = Day::parse(parts[0])?;
        let tt_end = if parts[1].eq_ignore_ascii_case("uc") {
            TtEnd::Uc
        } else {
            TtEnd::Ground(Day::parse(parts[1])?)
        };
        let vt_begin = Day::parse(parts[2])?;
        let vt_end = if parts[3].eq_ignore_ascii_case("now") {
            VtEnd::Now
        } else {
            VtEnd::Ground(Day::parse(parts[3])?)
        };
        TimeExtent::from_parts(tt_begin, tt_end, vt_begin, vt_end)
    }

    /// Encodes into the fixed 16-byte little-endian layout
    /// (`TTbegin, TTend, VTbegin, VTend`, with `i32::MAX` as the
    /// `UC`/`NOW` sentinel).
    pub fn encode(&self, out: &mut [u8]) {
        assert!(out.len() >= Self::ENCODED_LEN);
        let tte = match self.tt_end {
            TtEnd::Ground(d) => d.0,
            TtEnd::Uc => UC_SENTINEL,
        };
        let vte = match self.vt_end {
            VtEnd::Ground(d) => d.0,
            VtEnd::Now => NOW_SENTINEL,
        };
        out[0..4].copy_from_slice(&self.tt_begin.0.to_le_bytes());
        out[4..8].copy_from_slice(&tte.to_le_bytes());
        out[8..12].copy_from_slice(&self.vt_begin.0.to_le_bytes());
        out[12..16].copy_from_slice(&vte.to_le_bytes());
    }

    /// Encodes into a fresh 16-byte array.
    pub fn encode_array(&self) -> [u8; Self::ENCODED_LEN] {
        let mut buf = [0u8; Self::ENCODED_LEN];
        self.encode(&mut buf);
        buf
    }

    /// Decodes the 16-byte layout produced by [`TimeExtent::encode`].
    pub fn decode(buf: &[u8]) -> Result<TimeExtent> {
        if buf.len() < Self::ENCODED_LEN {
            return Err(TemporalError::Codec(format!(
                "time extent needs {} bytes, got {}",
                Self::ENCODED_LEN,
                buf.len()
            )));
        }
        let word = |i: usize| i32::from_le_bytes(buf[i..i + 4].try_into().unwrap());
        let tt_begin = Day(word(0));
        let tte = word(4);
        let vt_begin = Day(word(8));
        let vte = word(12);
        let tt_end = if tte == UC_SENTINEL {
            TtEnd::Uc
        } else {
            TtEnd::Ground(Day(tte))
        };
        let vt_end = if vte == NOW_SENTINEL {
            VtEnd::Now
        } else {
            VtEnd::Ground(Day(vte))
        };
        TimeExtent::from_parts(tt_begin, tt_end, vt_begin, vt_end)
    }
}

impl std::fmt::Display for TimeExtent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}, {}, {}, {}",
            self.tt_begin, self.tt_end, self.vt_begin, self.vt_end
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(n: i32) -> Day {
        Day(n)
    }

    fn month(m: u32, y: i32) -> Day {
        Day::from_ymd(y, m, 1).unwrap()
    }

    #[test]
    fn empdep_cases_match_figure1() {
        // The paper's Table 1 tuples, at CT = 9/97, map to Figure 1's
        // cases in order 1, 2, 3, 4, 5 (tuple 5 is a case-1 rectangle;
        // tuple 6 is the case-5 high-first-step stair).
        let t = |ttb: u32, tte: Option<u32>, vtb: u32, vte: Option<u32>| {
            TimeExtent::from_parts(
                month(ttb, 1997),
                tte.map_or(TtEnd::Uc, |m| TtEnd::Ground(month(m, 1997))),
                month(vtb, 1997),
                vte.map_or(VtEnd::Now, |m| VtEnd::Ground(month(m, 1997))),
            )
            .unwrap()
        };
        assert_eq!(t(4, None, 3, Some(5)).case(), Case::Case1); // John
        assert_eq!(t(3, Some(7), 6, Some(8)).case(), Case::Case2); // Tom
        assert_eq!(t(5, None, 5, None).case(), Case::Case3); // Jane
        assert_eq!(t(3, Some(7), 3, None).case(), Case::Case4); // Julie v1
        assert_eq!(t(8, None, 3, Some(7)).case(), Case::Case1); // Julie v2
        assert_eq!(t(5, None, 3, None).case(), Case::Case5); // Michelle
    }

    #[test]
    fn insertion_constraints() {
        let ct = d(100);
        assert!(TimeExtent::insert(ct, d(50), VtEnd::Ground(d(80))).is_ok());
        assert!(TimeExtent::insert(ct, d(50), VtEnd::Now).is_ok());
        // Future valid-time begin with NOW end violates the constraint.
        assert!(TimeExtent::insert(ct, d(150), VtEnd::Now).is_err());
        // Future fixed interval is fine (recording the future).
        assert!(TimeExtent::insert(ct, d(150), VtEnd::Ground(d(200))).is_ok());
        let e = TimeExtent::insert(ct, d(50), VtEnd::Now).unwrap();
        assert_eq!(e.tt_begin, ct);
        assert!(e.is_current());
    }

    #[test]
    fn logical_delete_freezes_transaction_time() {
        let e = TimeExtent::insert(d(100), d(100), VtEnd::Now).unwrap();
        let del = e.logical_delete(d(120)).unwrap();
        assert_eq!(del.tt_end, TtEnd::Ground(d(119)));
        assert_eq!(del.case(), Case::Case4);
        assert!(del.logical_delete(d(130)).is_err());
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let e = TimeExtent::parse("12/10/95, UC, 12/10/95, NOW").unwrap();
        assert!(e.tt_end.is_uc());
        assert!(e.vt_end.is_now());
        let text = e.to_string();
        let e2 = TimeExtent::parse(&text).unwrap();
        assert_eq!(e, e2);

        let g = TimeExtent::parse("3/97, 7/97, 6/97, 8/97").unwrap();
        assert_eq!(g.case(), Case::Case2);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(TimeExtent::parse("").is_err());
        assert!(TimeExtent::parse("1/97, UC, 1/97").is_err());
        assert!(TimeExtent::parse("1/97, UC, 1/97, NOW, extra").is_err());
        // NOW with VTbegin after TTbegin.
        assert!(TimeExtent::parse("3/97, UC, 6/97, NOW").is_err());
        // Backwards intervals.
        assert!(TimeExtent::parse("7/97, 3/97, 1/97, 2/97").is_err());
        assert!(TimeExtent::parse("1/97, UC, 5/97, 2/97").is_err());
    }

    #[test]
    fn binary_roundtrip() {
        let samples = [
            "12/10/95, UC, 12/10/95, NOW",
            "3/97, 7/97, 6/97, 8/97",
            "4/97, UC, 3/97, 5/97",
            "3/97, 7/97, 3/97, NOW",
        ];
        for s in samples {
            let e = TimeExtent::parse(s).unwrap();
            let buf = e.encode_array();
            assert_eq!(TimeExtent::decode(&buf).unwrap(), e, "{s}");
        }
        assert!(TimeExtent::decode(&[0u8; 3]).is_err());
    }

    #[test]
    fn region_growth_over_time() {
        let e = TimeExtent::insert(d(10), d(10), VtEnd::Now).unwrap();
        let r1 = e.region(d(20));
        let r2 = e.region(d(30));
        assert!(r2.contains(&r1), "regions grow monotonically");
        assert!(r2.area() > r1.area());
    }
}
