//! Bitemporal data model for the GR-tree DataBlade reproduction.
//!
//! This crate implements Section 2 of *Developing a DataBlade for a New
//! Index* (Bliujūtė, Šaltenis, Slivinskas, Jensen; ICDE 1999): the
//! four-timestamp (4TS) representation of bitemporal data with the
//! `UC` ("until changed") and `NOW` variables, the six-case taxonomy of
//! bitemporal regions (the paper's Figures 1 and 2), and the exact
//! two-dimensional geometry of those regions — rectangles and stair
//! shapes — together with the predicates (`Overlaps`, `Contains`,
//! `ContainedIn`, `Equal`) that the DataBlade exposes as strategy
//! functions.
//!
//! Coordinate convention (matching the paper's figures): the *x* axis is
//! transaction time, the *y* axis is valid time, and all intervals are
//! **closed** over integer days. A "growing" region is one whose
//! resolved extent depends on the current time; resolution of the `UC`
//! and `NOW` variables follows the paper's Section 3 algorithms
//! verbatim, including the `Hidden`-flag adjustment.
//!
//! The crate is self-contained (no I/O, no dependencies) so that the
//! geometry can be tested exhaustively and reused by both the GR-tree
//! and the baseline R\*-tree adaptations.
//!
//! ```
//! use grt_temporal::{Day, Predicate, TimeExtent};
//!
//! // Jane's tuple from the paper's Table 1: current since 5/97, valid
//! // until the current time — a growing stair shape.
//! let jane = TimeExtent::parse("5/97, UC, 5/97, NOW").unwrap();
//! // The Figure 8 probe: known at 5/97, true during 7/97.
//! let probe = TimeExtent::parse("5/97, 5/97, 7/97, 7/97").unwrap();
//! let ct = Day::from_ymd(1997, 9, 1).unwrap();
//! // The stair has not reached above the diagonal: no overlap.
//! assert!(!Predicate::Overlaps.eval(&jane, &probe, ct));
//! // But the naive bounding rectangle *would* claim one.
//! assert!(jane.region(ct).mbr().contains_point(
//!     Day::from_ymd(1997, 5, 1).unwrap(),
//!     Day::from_ymd(1997, 7, 1).unwrap(),
//! ));
//! ```

pub mod bound;
pub mod clock;
pub mod day;
pub mod extent;
pub mod predicate;
pub mod region;
pub mod value;

pub use bound::{bound_entries, covers_at};
pub use clock::{Clock, MockClock, SystemClock};
pub use day::Day;
pub use extent::{Case, TimeExtent};
pub use predicate::Predicate;
pub use region::{Rect, Region, Stair};
pub use value::{RegionSpec, TtEnd, VtEnd};

/// Errors produced by the bitemporal model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemporalError {
    /// A textual timestamp or extent failed to parse.
    Parse(String),
    /// A 4TS combination violates the paper's insertion constraints.
    Constraint(String),
    /// A binary buffer is too short or malformed.
    Codec(String),
}

impl std::fmt::Display for TemporalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TemporalError::Parse(m) => write!(f, "parse error: {m}"),
            TemporalError::Constraint(m) => write!(f, "constraint violation: {m}"),
            TemporalError::Codec(m) => write!(f, "codec error: {m}"),
        }
    }
}

impl std::error::Error for TemporalError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, TemporalError>;
