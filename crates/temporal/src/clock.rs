//! Current-time sources.
//!
//! The GR-tree algorithms resolve `UC` and `NOW` against the *current
//! time*, and Section 5.4 of the paper discusses precisely **when** that
//! value is sampled (per statement at `am_open`, or once per
//! transaction, cached in session-named memory). The engine therefore
//! talks to an abstract [`Clock`]; tests and benchmarks use a
//! [`MockClock`] they can advance deterministically, which also makes
//! "growing" regions observable without waiting for wall-clock days.

use crate::day::Day;
use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::Arc;

/// A source of the current day.
pub trait Clock: Send + Sync {
    /// The current day.
    fn today(&self) -> Day;
}

/// Wall-clock time at day granularity (days since the Unix epoch, UTC).
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn today(&self) -> Day {
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs() as i64)
            .unwrap_or(0);
        Day((secs / 86_400) as i32)
    }
}

/// A manually-advanced clock shared between the test harness and the
/// engine. Cloning shares the underlying day.
#[derive(Debug, Clone)]
pub struct MockClock {
    day: Arc<AtomicI32>,
}

impl MockClock {
    /// Creates a clock frozen at `day`.
    pub fn new(day: Day) -> MockClock {
        MockClock {
            day: Arc::new(AtomicI32::new(day.0)),
        }
    }

    /// Jumps to an absolute day.
    pub fn set(&self, day: Day) {
        self.day.store(day.0, Ordering::SeqCst);
    }

    /// Advances by `days` (may be zero; negative moves are allowed for
    /// adversarial tests, though a real transaction-time clock is
    /// monotone).
    pub fn advance(&self, days: i32) {
        self.day.fetch_add(days, Ordering::SeqCst);
    }
}

impl Clock for MockClock {
    fn today(&self) -> Day {
        Day(self.day.load(Ordering::SeqCst))
    }
}

impl Default for MockClock {
    fn default() -> Self {
        // An arbitrary fixed default near the paper's era: 1997-09-01
        // ("the current time (CT) is assumed to be 9/97").
        MockClock::new(Day::from_ymd(1997, 9, 1).expect("valid date"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_advances() {
        let c = MockClock::new(Day(100));
        assert_eq!(c.today(), Day(100));
        c.advance(5);
        assert_eq!(c.today(), Day(105));
        c.set(Day(50));
        assert_eq!(c.today(), Day(50));
    }

    #[test]
    fn mock_clock_clones_share_state() {
        let a = MockClock::new(Day(1));
        let b = a.clone();
        a.advance(9);
        assert_eq!(b.today(), Day(10));
    }

    #[test]
    fn system_clock_is_sane() {
        let d = SystemClock.today();
        // After 2020-01-01 and before 2100-01-01.
        assert!(d > Day::from_ymd(2020, 1, 1).unwrap());
        assert!(d < Day::from_ymd(2100, 1, 1).unwrap());
    }

    #[test]
    fn default_mock_is_paper_time() {
        let c = MockClock::default();
        assert_eq!(c.today(), Day::from_ymd(1997, 9, 1).unwrap());
    }
}
