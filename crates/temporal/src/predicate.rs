//! The bitemporal strategy predicates.
//!
//! These are the boolean functions the DataBlade registers as the
//! *strategy functions* of the GR-tree operator class (the paper's
//! Section 5.2): `Overlaps`, `Equal`, `Contains`, and `ContainedIn`.
//! Each takes two `GRT_TimeExtent_t` values; because a time extent with
//! `NOW`/`UC` only denotes a region relative to the current time, every
//! evaluation is parameterised by `ct`.
//!
//! The same predicates evaluated against *internal-node* regions (the
//! "OverlapsInternal" family the paper discusses) are obtained by
//! resolving a [`RegionSpec`] instead of a [`TimeExtent`]; both resolve
//! to [`Region`], over which the predicate semantics coincide.

use crate::day::Day;
use crate::extent::TimeExtent;
use crate::region::Region;
use crate::value::RegionSpec;

/// The four strategy predicates of the GR-tree operator class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// The regions share at least one point.
    Overlaps,
    /// The left region is a superset of the right region.
    Contains,
    /// The left region is a subset of the right region.
    ContainedIn,
    /// The regions are equal as point sets.
    Equal,
}

impl Predicate {
    /// All predicates, in the order they are registered in the operator
    /// class.
    pub const ALL: [Predicate; 4] = [
        Predicate::Overlaps,
        Predicate::Contains,
        Predicate::ContainedIn,
        Predicate::Equal,
    ];

    /// The UDR name under which the DataBlade registers this predicate.
    pub fn udr_name(self) -> &'static str {
        match self {
            Predicate::Overlaps => "Overlaps",
            Predicate::Contains => "Contains",
            Predicate::ContainedIn => "ContainedIn",
            Predicate::Equal => "Equal",
        }
    }

    /// Parses a UDR name (case-insensitive).
    pub fn from_udr_name(name: &str) -> Option<Predicate> {
        Predicate::ALL
            .into_iter()
            .find(|p| p.udr_name().eq_ignore_ascii_case(name))
    }

    /// Evaluates the predicate on two resolved regions.
    pub fn eval_regions(self, left: &Region, right: &Region) -> bool {
        match self {
            Predicate::Overlaps => left.overlaps(right),
            Predicate::Contains => left.contains(right),
            Predicate::ContainedIn => right.contains(left),
            Predicate::Equal => left.equals(right),
        }
    }

    /// Evaluates the predicate on two time extents at current time `ct` —
    /// the strategy-function semantics.
    pub fn eval(self, left: &TimeExtent, right: &TimeExtent, ct: Day) -> bool {
        self.eval_regions(&left.region(ct), &right.region(ct))
    }

    /// Evaluates the predicate with an internal-node region on the left —
    /// the "hard-coded internal function" of the paper's Section 5.2.
    pub fn eval_internal(self, internal: &RegionSpec, query: &TimeExtent, ct: Day) -> bool {
        self.eval_regions(&internal.resolve(ct), &query.region(ct))
    }

    /// Whether a match of an internal-node bounding region can prune the
    /// subtree: during descent the index checks *consistency*, i.e.
    /// "could any child region satisfy the predicate?". For `Overlaps`,
    /// `Equal`, and `ContainedIn` a child can only qualify if the
    /// bounding region overlaps the query region (for `ContainedIn` the
    /// bound must merely overlap — children inside the bound may still
    /// be inside the query). For `Contains` the bounding region must
    /// contain the query region.
    pub fn consistent(self, bound: &Region, query: &Region) -> bool {
        match self {
            Predicate::Overlaps => bound.overlaps(query),
            Predicate::Contains => bound.contains(query),
            Predicate::ContainedIn | Predicate::Equal => bound.overlaps(query),
        }
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.udr_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{TtEnd, VtEnd};

    fn d(n: i32) -> Day {
        Day(n)
    }

    fn extent(ttb: i32, tte: Option<i32>, vtb: i32, vte: Option<i32>) -> TimeExtent {
        TimeExtent::from_parts(
            d(ttb),
            tte.map_or(TtEnd::Uc, |x| TtEnd::Ground(d(x))),
            d(vtb),
            vte.map_or(VtEnd::Now, |x| VtEnd::Ground(d(x))),
        )
        .unwrap()
    }

    #[test]
    fn names_roundtrip() {
        for p in Predicate::ALL {
            assert_eq!(Predicate::from_udr_name(p.udr_name()), Some(p));
            assert_eq!(
                Predicate::from_udr_name(&p.udr_name().to_lowercase()),
                Some(p)
            );
        }
        assert_eq!(Predicate::from_udr_name("Near"), None);
    }

    #[test]
    fn contains_containedin_duality() {
        let ct = d(100);
        let big = extent(10, Some(90), 0, Some(80));
        let small = extent(20, Some(40), 10, Some(30));
        assert!(Predicate::Contains.eval(&big, &small, ct));
        assert!(Predicate::ContainedIn.eval(&small, &big, ct));
        assert!(!Predicate::Contains.eval(&small, &big, ct));
        assert!(Predicate::Overlaps.eval(&big, &small, ct));
        assert!(!Predicate::Equal.eval(&big, &small, ct));
    }

    #[test]
    fn equal_is_reflexive() {
        let ct = d(100);
        for e in [
            extent(10, None, 10, None),
            extent(10, Some(50), 0, Some(40)),
            extent(10, Some(50), 10, None),
        ] {
            assert!(Predicate::Equal.eval(&e, &e, ct));
            assert!(Predicate::Contains.eval(&e, &e, ct));
            assert!(Predicate::ContainedIn.eval(&e, &e, ct));
        }
    }

    #[test]
    fn growing_extents_change_answers_over_time() {
        // A growing stair eventually overlaps a future fixed rectangle.
        let stair = extent(10, None, 10, None);
        let future = extent(10, Some(20), 190, Some(200));
        // Wait: the rectangle sits at vt 190..200, tt 10..20. The stair
        // reaches vt = t only up to t, and its tt keeps growing, but at
        // tt <= 20 its vt top is <= 20 < 190. They never overlap: the
        // stair grows along the diagonal, the rectangle's tt is capped.
        assert!(!Predicate::Overlaps.eval(&stair, &future, d(1_000)));
        // Whereas a case-1 rectangle with the same tt span does overlap
        // once... never mind growth: overlap needs shared tt AND vt.
        let tall = extent(15, None, 150, Some(250));
        // tall: tt 15..ct, vt 150..250. The stair at ct = 300 spans
        // tt 10..300, v <= t; at t = 200, v can reach 200 >= 150.
        assert!(Predicate::Overlaps.eval(&stair, &tall, d(300)));
        // At ct = 120 the stair's diagonal has not reached vt = 150 yet.
        assert!(!Predicate::Overlaps.eval(&stair, &tall, d(120)));
    }

    #[test]
    fn consistency_never_misses() {
        // If an entry satisfies a predicate, its bounding region must be
        // consistent — the pruning test must not reject it.
        let ct = d(100);
        let entries = [
            extent(10, None, 10, None),
            extent(20, Some(60), 0, Some(50)),
            extent(30, None, 5, Some(90)),
        ];
        let queries = [
            extent(15, Some(55), 10, Some(45)),
            extent(10, None, 10, None),
        ];
        let specs: Vec<_> = entries.iter().map(|e| e.spec()).collect();
        let bound = crate::bound::bound_entries(&specs, ct);
        for q in &queries {
            for p in Predicate::ALL {
                for e in &entries {
                    if p.eval(e, q, ct) {
                        assert!(
                            p.consistent(&bound.resolve(ct), &q.region(ct)),
                            "{p} pruned a qualifying entry"
                        );
                    }
                }
            }
        }
    }
}
