//! Day-granularity timestamps.
//!
//! The paper's prototype uses the granularity of days, "as provided by
//! [Informix's] DATE type" (Section 5.1); its running examples use a
//! granularity of months ("3/97"). `Day` is a signed count of days since
//! 1970-01-01 in the proleptic Gregorian calendar and parses/prints both
//! the `mm/dd/yyyy` form used in the paper's SQL examples and the
//! `m/yy` month shorthand used in its tables (a month shorthand denotes
//! the first day of that month).

use crate::{Result, TemporalError};

/// A day-granularity timestamp: days since 1970-01-01 (may be negative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Day(pub i32);

const DAYS_PER_400Y: i64 = 146_097;
const DAYS_PER_100Y: i64 = 36_524;

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Cumulative days before each month in a non-leap year.
const MONTH_OFFSETS: [i64; 12] = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334];

impl Day {
    /// The smallest representable day (used as "-infinity" in scans).
    pub const MIN: Day = Day(i32::MIN + 1);
    /// The largest *ordinary* day. `i32::MAX` is reserved as the on-disk
    /// sentinel for the `UC`/`NOW` variables.
    pub const MAX: Day = Day(i32::MAX - 1);

    /// Builds a `Day` from a calendar date. Returns `None` for invalid
    /// dates (month out of 1..=12, day out of range for the month).
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Option<Day> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return None;
        }
        // Days from 1970-01-01 to year-01-01.
        let y = year as i64 - 1970;
        let mut days = y * 365;
        // Leap days between 1970 and `year` (exclusive of `year` when
        // counting forward, inclusive when counting backward).
        let leaps = |yy: i64| -> i64 { yy.div_euclid(4) - yy.div_euclid(100) + yy.div_euclid(400) };
        // Number of leap years in [1970, year) = leaps(year-1) - leaps(1969).
        days += leaps(year as i64 - 1) - leaps(1969);
        days += MONTH_OFFSETS[(month - 1) as usize];
        if month > 2 && is_leap(year) {
            days += 1;
        }
        days += day as i64 - 1;
        if days < Day::MIN.0 as i64 || days > Day::MAX.0 as i64 {
            return None;
        }
        Some(Day(days as i32))
    }

    /// Converts back to `(year, month, day)`.
    pub fn to_ymd(self) -> (i32, u32, u32) {
        // Shift to an epoch of 0000-03-01 so leap day is last in the cycle.
        // days since 1970-01-01 -> days since 0000-03-01:
        let mut d = self.0 as i64 + 719_468; // 719468 = days from 0000-03-01 to 1970-01-01
        let era = d.div_euclid(DAYS_PER_400Y);
        d = d.rem_euclid(DAYS_PER_400Y);
        let yoe = (d - d / 1460 + d / DAYS_PER_100Y - d / (DAYS_PER_400Y - 1)) / 365;
        let doy = d - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let day = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let month = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
        let year = (yoe + era * 400 + if month <= 2 { 1 } else { 0 }) as i32;
        (year, month, day)
    }

    /// Saturating successor.
    #[must_use]
    pub fn succ(self) -> Day {
        Day(self.0.saturating_add(1).min(Day::MAX.0))
    }

    /// Saturating predecessor.
    #[must_use]
    pub fn pred(self) -> Day {
        Day(self.0.saturating_sub(1).max(Day::MIN.0))
    }

    /// Adds a number of days, saturating at the representable range.
    #[must_use]
    pub fn plus(self, days: i32) -> Day {
        Day((self.0 as i64 + days as i64).clamp(Day::MIN.0 as i64, Day::MAX.0 as i64) as i32)
    }

    /// Parses either `mm/dd/yyyy` (also two-digit years, interpreted in
    /// the 1900s as in the paper's "12/10/95") or the month shorthand
    /// `m/yy` / `m/yyyy` (meaning the first day of the month).
    pub fn parse(text: &str) -> Result<Day> {
        let parts: Vec<&str> = text.trim().split('/').collect();
        let num = |s: &str| -> Result<i32> {
            s.trim()
                .parse::<i32>()
                .map_err(|_| TemporalError::Parse(format!("bad number {s:?} in date {text:?}")))
        };
        let fix_year = |y: i32| if (0..100).contains(&y) { y + 1900 } else { y };
        match parts.as_slice() {
            [m, y] => {
                let month = num(m)?;
                let year = fix_year(num(y)?);
                Day::from_ymd(year, month as u32, 1)
                    .ok_or_else(|| TemporalError::Parse(format!("invalid month date {text:?}")))
            }
            [m, d, y] => {
                let month = num(m)?;
                let day = num(d)?;
                let year = fix_year(num(y)?);
                Day::from_ymd(year, month as u32, day as u32)
                    .ok_or_else(|| TemporalError::Parse(format!("invalid date {text:?}")))
            }
            _ => Err(TemporalError::Parse(format!(
                "expected m/yy or mm/dd/yyyy, got {text:?}"
            ))),
        }
    }
}

impl std::fmt::Display for Day {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{m:02}/{d:02}/{y:04}")
    }
}

impl From<i32> for Day {
    fn from(v: i32) -> Self {
        Day(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(Day::from_ymd(1970, 1, 1), Some(Day(0)));
    }

    #[test]
    fn known_dates() {
        assert_eq!(Day::from_ymd(1970, 1, 2), Some(Day(1)));
        assert_eq!(Day::from_ymd(1971, 1, 1), Some(Day(365)));
        assert_eq!(Day::from_ymd(1972, 3, 1), Some(Day(365 * 2 + 31 + 29)));
        // 2000-01-01 is 10957 days after the epoch.
        assert_eq!(Day::from_ymd(2000, 1, 1), Some(Day(10_957)));
        // Pre-epoch dates.
        assert_eq!(Day::from_ymd(1969, 12, 31), Some(Day(-1)));
        assert_eq!(Day::from_ymd(1969, 1, 1), Some(Day(-365)));
    }

    #[test]
    fn roundtrip_ymd() {
        for n in (-200_000..200_000).step_by(97) {
            let d = Day(n);
            let (y, m, dd) = d.to_ymd();
            assert_eq!(Day::from_ymd(y, m, dd), Some(d), "day {n} -> {y}-{m}-{dd}");
        }
    }

    #[test]
    fn leap_years() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(1996));
        assert!(!is_leap(1997));
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
    }

    #[test]
    fn invalid_dates_rejected() {
        assert_eq!(Day::from_ymd(1997, 2, 29), None);
        assert_eq!(Day::from_ymd(1997, 13, 1), None);
        assert_eq!(Day::from_ymd(1997, 0, 1), None);
        assert_eq!(Day::from_ymd(1997, 4, 31), None);
        assert_eq!(Day::from_ymd(1997, 4, 0), None);
    }

    #[test]
    fn parse_paper_forms() {
        // The paper's month shorthand "3/97" = March 1997.
        assert_eq!(
            Day::parse("3/97").unwrap(),
            Day::from_ymd(1997, 3, 1).unwrap()
        );
        // The paper's SQL literal "12/10/95".
        assert_eq!(
            Day::parse("12/10/95").unwrap(),
            Day::from_ymd(1995, 12, 10).unwrap()
        );
        assert_eq!(
            Day::parse("01/02/2003").unwrap(),
            Day::from_ymd(2003, 1, 2).unwrap()
        );
        assert!(Day::parse("").is_err());
        assert!(Day::parse("1/2/3/4").is_err());
        assert!(Day::parse("x/97").is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(Day::from_ymd(1997, 3, 1).unwrap().to_string(), "03/01/1997");
    }

    #[test]
    fn succ_pred_plus() {
        let d = Day(100);
        assert_eq!(d.succ(), Day(101));
        assert_eq!(d.pred(), Day(99));
        assert_eq!(d.plus(-50), Day(50));
        assert_eq!(Day::MAX.succ(), Day::MAX);
        assert_eq!(Day::MIN.pred(), Day::MIN);
    }

    #[test]
    fn ordering_matches_calendar() {
        let a = Day::from_ymd(1997, 3, 1).unwrap();
        let b = Day::from_ymd(1997, 5, 1).unwrap();
        assert!(a < b);
    }
}
