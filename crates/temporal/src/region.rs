//! Exact geometry of resolved bitemporal regions.
//!
//! After resolving `UC`/`NOW` against the current time (see
//! [`crate::value::RegionSpec::resolve`]) every bitemporal region is one
//! of two closed shapes over integer days (x = transaction time,
//! y = valid time):
//!
//! * a [`Rect`] — `{(t, v) : tt1 <= t <= tt2, vt1 <= v <= vt2}`, or
//! * a [`Stair`] — `{(t, v) : tt1 <= t <= tt2, vt1 <= v <= t}`, the
//!   region under the `y = x` diagonal that a `NOW`-terminated tuple
//!   sweeps out (the paper's Figure 1, cases 3–6).
//!
//! All predicate and measure computations are exact integer arithmetic —
//! there is no floating point and no sampling. Areas are counted in
//! day-cells (a closed interval `[a, b]` contains `b - a + 1` cells),
//! which makes the dead-space and overlap statistics of the benchmark
//! suite exactly reproducible.

use crate::day::Day;

/// A closed axis-aligned rectangle in (transaction, valid)-time space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Transaction-time interval start.
    pub tt1: Day,
    /// Transaction-time interval end (inclusive).
    pub tt2: Day,
    /// Valid-time interval start.
    pub vt1: Day,
    /// Valid-time interval end (inclusive).
    pub vt2: Day,
}

/// A closed stair shape: the part of the rectangle
/// `[tt1, tt2] x [vt1, ..]` lying on or under the `v = t` diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stair {
    /// Transaction-time interval start.
    pub tt1: Day,
    /// Transaction-time interval end (inclusive) — also the height of
    /// the top step.
    pub tt2: Day,
    /// Valid-time interval start.
    pub vt1: Day,
}

/// A resolved bitemporal region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Rectangular region.
    Rect(Rect),
    /// Stair-shaped region.
    Stair(Stair),
}

impl Rect {
    /// Constructs a rectangle. Inverted intervals denote the empty
    /// region (see [`Rect::is_empty`]).
    pub fn new(tt1: Day, tt2: Day, vt1: Day, vt2: Day) -> Rect {
        Rect { tt1, tt2, vt1, vt2 }
    }

    /// True when the rectangle contains no cell.
    pub fn is_empty(&self) -> bool {
        self.tt1 > self.tt2 || self.vt1 > self.vt2
    }

    /// Number of day-cells covered.
    pub fn area(&self) -> i128 {
        if self.is_empty() {
            return 0;
        }
        let w = (self.tt2.0 as i128) - (self.tt1.0 as i128) + 1;
        let h = (self.vt2.0 as i128) - (self.vt1.0 as i128) + 1;
        w * h
    }

    /// Point membership.
    pub fn contains_point(&self, t: Day, v: Day) -> bool {
        self.tt1 <= t && t <= self.tt2 && self.vt1 <= v && v <= self.vt2
    }
}

impl Stair {
    /// Constructs a stair shape.
    pub fn new(tt1: Day, tt2: Day, vt1: Day) -> Stair {
        Stair { tt1, tt2, vt1 }
    }

    /// First transaction time at which the stair has any cell: the stair
    /// requires `v <= t` and `v >= vt1`, so columns before `vt1` are
    /// empty.
    pub fn effective_tt1(&self) -> Day {
        self.tt1.max(self.vt1)
    }

    /// True when the stair contains no cell.
    pub fn is_empty(&self) -> bool {
        self.effective_tt1() > self.tt2
    }

    /// Number of day-cells covered: `sum over t of (t - vt1 + 1)`.
    pub fn area(&self) -> i128 {
        if self.is_empty() {
            return 0;
        }
        let a = self.effective_tt1().0 as i128;
        let b = self.tt2.0 as i128;
        let m = self.vt1.0 as i128;
        // Column at t holds t - m + 1 cells; arithmetic series over [a, b].
        let first = a - m + 1;
        let last = b - m + 1;
        (first + last) * (b - a + 1) / 2
    }

    /// Point membership.
    pub fn contains_point(&self, t: Day, v: Day) -> bool {
        self.tt1 <= t && t <= self.tt2 && self.vt1 <= v && v <= t
    }

    /// The minimum bounding rectangle of the stair.
    pub fn mbr(&self) -> Rect {
        Rect::new(self.effective_tt1(), self.tt2, self.vt1, self.tt2)
    }
}

/// Counts `sum over t in [a, b] of max(0, min(cap, t) - m + 1)` — the
/// shared kernel of all stair intersection areas. `cap = Day::MAX.0`
/// means "no cap" (stair against stair).
fn sum_clamped(a: i64, b: i64, m: i64, cap: i64) -> i128 {
    if a > b || cap < m {
        return 0;
    }
    let lo = a.max(m);
    if lo > b {
        return 0;
    }
    // Rising part: t in [lo, min(b, cap)] contributes t - m + 1.
    let rise_hi = b.min(cap);
    let mut total: i128 = 0;
    if lo <= rise_hi {
        let first = (lo - m + 1) as i128;
        let last = (rise_hi - m + 1) as i128;
        let n = (rise_hi - lo + 1) as i128;
        total += (first + last) * n / 2;
    }
    // Flat part: t in [max(lo, cap + 1), b] contributes cap - m + 1.
    let flat_lo = lo.max(cap + 1);
    if flat_lo <= b {
        total += ((cap - m + 1) as i128) * ((b - flat_lo + 1) as i128);
    }
    total
}

impl Region {
    /// True when the region covers no cell.
    pub fn is_empty(&self) -> bool {
        match self {
            Region::Rect(r) => r.is_empty(),
            Region::Stair(s) => s.is_empty(),
        }
    }

    /// Number of day-cells covered.
    pub fn area(&self) -> i128 {
        match self {
            Region::Rect(r) => r.area(),
            Region::Stair(s) => s.area(),
        }
    }

    /// Point membership.
    pub fn contains_point(&self, t: Day, v: Day) -> bool {
        match self {
            Region::Rect(r) => r.contains_point(t, v),
            Region::Stair(s) => s.contains_point(t, v),
        }
    }

    /// The minimum bounding rectangle.
    pub fn mbr(&self) -> Rect {
        match self {
            Region::Rect(r) => *r,
            Region::Stair(s) => s.mbr(),
        }
    }

    /// Exact intersection area in day-cells.
    pub fn intersection_area(&self, other: &Region) -> i128 {
        if self.is_empty() || other.is_empty() {
            return 0;
        }
        match (self, other) {
            (Region::Rect(a), Region::Rect(b)) => {
                let r = Rect::new(
                    a.tt1.max(b.tt1),
                    a.tt2.min(b.tt2),
                    a.vt1.max(b.vt1),
                    a.vt2.min(b.vt2),
                );
                r.area()
            }
            (Region::Rect(r), Region::Stair(s)) | (Region::Stair(s), Region::Rect(r)) => {
                let a = r.tt1.max(s.tt1).0 as i64;
                let b = r.tt2.min(s.tt2).0 as i64;
                let m = r.vt1.max(s.vt1).0 as i64;
                sum_clamped(a, b, m, r.vt2.0 as i64)
            }
            (Region::Stair(a), Region::Stair(b)) => {
                let lo = a.tt1.max(b.tt1).0 as i64;
                let hi = a.tt2.min(b.tt2).0 as i64;
                let m = a.vt1.max(b.vt1).0 as i64;
                sum_clamped(lo, hi, m, i64::MAX - 1)
            }
        }
    }

    /// Exact overlap test — equivalent to `intersection_area > 0` but
    /// without the arithmetic.
    pub fn overlaps(&self, other: &Region) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        match (self, other) {
            (Region::Rect(a), Region::Rect(b)) => {
                a.tt1 <= b.tt2 && b.tt1 <= a.tt2 && a.vt1 <= b.vt2 && b.vt1 <= a.vt2
            }
            (Region::Rect(r), Region::Stair(s)) | (Region::Stair(s), Region::Rect(r)) => {
                let a = r.tt1.max(s.tt1);
                let b = r.tt2.min(s.tt2);
                // Best column is t = b, where the stair reaches v = b.
                a <= b && r.vt1.max(s.vt1) <= r.vt2.min(b)
            }
            (Region::Stair(a), Region::Stair(b)) => {
                let lo = a.tt1.max(b.tt1);
                let hi = a.tt2.min(b.tt2);
                lo <= hi && a.vt1.max(b.vt1) <= hi
            }
        }
    }

    /// Exact containment test: `self ⊇ other`. The empty region is
    /// contained in everything.
    pub fn contains(&self, other: &Region) -> bool {
        if other.is_empty() {
            return true;
        }
        if self.is_empty() {
            return false;
        }
        match (self, other) {
            (Region::Rect(a), Region::Rect(b)) => {
                a.tt1 <= b.tt1 && b.tt2 <= a.tt2 && a.vt1 <= b.vt1 && b.vt2 <= a.vt2
            }
            (Region::Rect(r), Region::Stair(s)) => {
                // The stair spans t in [eff, tt2], v in [vt1, t]; its
                // highest point is (tt2, tt2).
                let eff = s.effective_tt1();
                r.tt1 <= eff && s.tt2 <= r.tt2 && r.vt1 <= s.vt1 && s.tt2 <= r.vt2
            }
            (Region::Stair(s), Region::Rect(r)) => {
                // Worst rectangle corner is the top-left (r.tt1, r.vt2).
                s.tt1 <= r.tt1 && r.tt2 <= s.tt2 && s.vt1 <= r.vt1 && r.vt2 <= r.tt1
            }
            (Region::Stair(a), Region::Stair(b)) => {
                let eff = b.effective_tt1();
                a.tt1.max(a.vt1) <= eff && b.tt2 <= a.tt2 && a.vt1 <= b.vt1
            }
        }
    }

    /// Exact set equality (mutual containment).
    pub fn equals(&self, other: &Region) -> bool {
        self.contains(other) && other.contains(self)
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Region::Rect(r) => write!(
                f,
                "rect[{}..{}]x[{}..{}]",
                r.tt1.0, r.tt2.0, r.vt1.0, r.vt2.0
            ),
            Region::Stair(s) => write!(f, "stair[{}..{}, vt>={}]", s.tt1.0, s.tt2.0, s.vt1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(n: i32) -> Day {
        Day(n)
    }

    fn rect(a: i32, b: i32, c: i32, e: i32) -> Region {
        Region::Rect(Rect::new(d(a), d(b), d(c), d(e)))
    }

    fn stair(a: i32, b: i32, c: i32) -> Region {
        Region::Stair(Stair::new(d(a), d(b), d(c)))
    }

    /// Enumerates every integer cell of a region within a window; the
    /// brute-force oracle for all geometric predicates.
    fn cells(r: &Region, lo: i32, hi: i32) -> std::collections::BTreeSet<(i32, i32)> {
        let mut out = std::collections::BTreeSet::new();
        for t in lo..=hi {
            for v in lo..=hi {
                if r.contains_point(d(t), d(v)) {
                    out.insert((t, v));
                }
            }
        }
        out
    }

    fn sample_regions() -> Vec<Region> {
        let mut rs = Vec::new();
        for &(a, b, c, e) in &[
            (0, 5, 0, 5),
            (2, 8, 1, 3),
            (3, 3, 3, 3),
            (0, 10, 6, 9),
            (7, 9, 0, 2),
            (4, 6, 4, 6),
            (5, 4, 0, 1), // empty
        ] {
            rs.push(rect(a, b, c, e));
        }
        for &(a, b, c) in &[
            (0, 8, 0),
            (3, 9, 1),
            (5, 10, 5),
            (2, 6, 4),
            (0, 4, 6), // partially clipped by the diagonal
            (8, 3, 0), // empty
            (0, 2, 5), // entirely above: empty
        ] {
            rs.push(stair(a, b, c));
        }
        rs
    }

    #[test]
    fn brute_force_overlap_contains_equal_area() {
        let regions = sample_regions();
        for (i, a) in regions.iter().enumerate() {
            let ca = cells(a, -2, 14);
            assert_eq!(a.area(), ca.len() as i128, "area of {a} (#{i})");
            assert_eq!(a.is_empty(), ca.is_empty(), "emptiness of {a}");
            for b in regions.iter() {
                let cb = cells(b, -2, 14);
                let inter: Vec<_> = ca.intersection(&cb).collect();
                assert_eq!(a.overlaps(b), !inter.is_empty(), "overlap {a} vs {b}");
                assert_eq!(
                    a.intersection_area(b),
                    inter.len() as i128,
                    "intersection area {a} vs {b}"
                );
                assert_eq!(a.contains(b), cb.is_subset(&ca), "containment {a} ⊇ {b}");
                assert_eq!(a.equals(b), ca == cb, "equality {a} = {b}");
            }
        }
    }

    #[test]
    fn stair_area_closed_form() {
        // Stair at tt [0, 3], vt1 = 0: columns of 1, 2, 3, 4 cells.
        assert_eq!(stair(0, 3, 0).area(), 10);
        // Clipped stair: vt1 = 2 over tt [0, 3]: columns at t=2 (1 cell)
        // and t=3 (2 cells).
        assert_eq!(stair(0, 3, 2).area(), 3);
    }

    #[test]
    fn stair_mbr() {
        let s = Stair::new(d(2), d(9), d(0));
        assert_eq!(s.mbr(), Rect::new(d(2), d(9), d(0), d(9)));
        let clipped = Stair::new(d(0), d(9), d(4));
        assert_eq!(clipped.mbr(), Rect::new(d(4), d(9), d(4), d(9)));
    }

    #[test]
    fn overlap_is_symmetric() {
        let regions = sample_regions();
        for a in &regions {
            for b in &regions {
                assert_eq!(a.overlaps(b), b.overlaps(a), "{a} vs {b}");
                assert_eq!(a.intersection_area(b), b.intersection_area(a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn containment_implies_overlap_for_nonempty() {
        let regions = sample_regions();
        for a in &regions {
            for b in &regions {
                if a.contains(b) && !b.is_empty() {
                    assert!(a.overlaps(b), "{a} contains nonempty {b} but no overlap");
                }
            }
        }
    }

    #[test]
    fn julie_stair_does_not_overlap_fig8_query() {
        // The paper's Table 3 / Figure 8 example. Months as day numbers:
        // 3/97 = 3, 5/97 = 5, 7/97 = 7. Julie's extent resolved at 9/97
        // is the stair (tt 3..7, vt1 = 3) because the tuple was deleted
        // at 7/97 while VTend was NOW. The query point is (tt = 5,
        // vt = 7): "who worked in Sales during 7/97 according to the
        // knowledge we had during 5/97".
        let julie = stair(3, 7, 3);
        let query = rect(5, 5, 7, 7);
        assert!(!julie.overlaps(&query), "the stair must miss the query");
        // The *decomposed* per-interval check wrongly says yes: tt
        // intervals [3,7] vs [5,5] overlap, and vt intervals [3,7]
        // (NOW resolved to 7/97 at query time 9/97... even at its
        // maximum) vs [7,7] overlap.
        // The decomposed per-interval check is fooled: Julie's tt
        // interval [3, 7] contains 5, and her vt interval [3, NOW->7]
        // contains 7 — both pass even though the stair misses the point.
        let (tt1, tt2, vt1, vt2, qt, qv) = (3, 7, 3, 7, 5, 7);
        assert!(tt1 <= qt && qt <= tt2 && vt1 <= qv && qv <= vt2);
    }
}
