//! Minimum bounding regions for GR-tree nodes.
//!
//! A non-leaf GR-tree entry bounds all regions of its child node with a
//! minimum bounding **region** — a rectangle *or* a stair shape — that
//! must stay valid as the child regions grow (the paper's Section 3 and
//! Figure 4). This module computes such bounds from unresolved
//! [`RegionSpec`]s:
//!
//! * a bounding **stair** is used when every child region stays on or
//!   under the `v = t` diagonal (Figure 4(b));
//! * a bounding **growing rectangle** (`Rectangle` flag) is used when
//!   some child grows in valid time but others extend above the
//!   diagonal (Figure 4(a));
//! * a bounding rectangle with a **fixed** valid-time end and the
//!   `Hidden` flag is used when a small growing stair hides inside
//!   taller fixed regions (Figure 4(c)) — the paper's trick to avoid
//!   prematurely declaring the whole subtree "growing".
//!
//! The hidden-rectangle form is not merely an optimisation: when a
//! fixed child region reaches above the current time while a sibling
//! grows, no `NOW`-encoded bound can cover both (a growing bound tops
//! out at the current time), so the fixed-plus-`Hidden` encoding is the
//! *only* sound choice. The bound is therefore fully determined by the
//! child set.

use crate::day::Day;
use crate::value::{RegionSpec, TtEnd, VtEnd};

/// Whether the child will (now or eventually) extend in valid time: a
/// growing stair or growing rectangle, or a hidden entry whose fixed
/// bound will be outgrown.
fn is_vt_grower(spec: &RegionSpec, ct: Day) -> bool {
    spec.grows_vt(ct) || (spec.hidden && matches!(spec.vt_end, VtEnd::Ground(_)))
}

/// The child's current valid-time top (the `vt2` of its resolved MBR).
fn current_vt_top(spec: &RegionSpec, ct: Day) -> Day {
    spec.resolve(ct).mbr().vt2
}

/// The child's current transaction-time top.
fn current_tt_top(spec: &RegionSpec, ct: Day) -> Day {
    spec.resolve(ct).mbr().tt2
}

/// Computes the minimum bounding region of a set of child specs at
/// current time `ct`. The result is itself a [`RegionSpec`] (the content
/// of the parent entry) and is guaranteed to cover every child region at
/// `ct` and at every later time.
///
/// # Panics
///
/// Panics when `children` is empty — a GR-tree node always has at least
/// one entry.
pub fn bound_entries(children: &[RegionSpec], ct: Day) -> RegionSpec {
    assert!(!children.is_empty(), "cannot bound an empty entry set");

    let tt_begin = children.iter().map(|c| c.tt_begin).min().unwrap();
    let vt_begin = children.iter().map(|c| c.vt_begin).min().unwrap();
    let any_tt_grow = children.iter().any(|c| c.grows_tt());
    let tt_top = children
        .iter()
        .map(|c| current_tt_top(c, ct))
        .max()
        .unwrap();
    let tt_end = if any_tt_grow {
        TtEnd::Uc
    } else {
        TtEnd::Ground(tt_top)
    };

    let growers = children.iter().any(|c| is_vt_grower(c, ct));
    let all_under = children.iter().all(|c| c.under_diagonal(ct));
    let vt_top = children
        .iter()
        .map(|c| current_vt_top(c, ct))
        .max()
        .unwrap();

    if !growers {
        // Static in valid time. Choose the tighter of the bounding
        // rectangle and (when legal) the bounding stair.
        let rect_bound = RegionSpec {
            tt_begin,
            tt_end,
            vt_begin,
            vt_end: VtEnd::Ground(vt_top),
            rect: false,
            hidden: false,
        };
        if all_under {
            let stair_bound = RegionSpec {
                tt_begin,
                tt_end,
                vt_begin,
                vt_end: VtEnd::Now,
                rect: false,
                hidden: false,
            };
            // Both are valid covers; a stopped stair set is bounded more
            // tightly by a stair, a set of low flat rectangles by a
            // rectangle.
            if stair_bound.resolve(ct).area() < rect_bound.resolve(ct).area() && !any_tt_grow {
                return stair_bound;
            }
            if any_tt_grow {
                // A growing stair bound also covers, and its area tracks
                // the children; compare at the current time.
                let grow_stair = RegionSpec {
                    tt_begin,
                    tt_end: TtEnd::Uc,
                    vt_begin,
                    vt_end: VtEnd::Now,
                    rect: false,
                    hidden: false,
                };
                // Only sound when no child's fixed vt reaches above the
                // diagonal over time; `all_under` guarantees that.
                // But a stair with VTend = NOW grows in vt as ct
                // advances while the children do not — prefer the fixed
                // vt rectangle unless it is looser now.
                if grow_stair.resolve(ct).area() < rect_bound.resolve(ct).area() {
                    return grow_stair;
                }
            }
        }
        return rect_bound;
    }

    // Some child grows in valid time.
    if vt_top > ct {
        // Some fixed child reaches above the current time: a growing
        // bound (whose top is the current time) cannot cover it, so the
        // growers must hide inside a fixed rectangle (Figure 4(c)).
        return RegionSpec {
            tt_begin,
            tt_end,
            vt_begin,
            vt_end: VtEnd::Ground(vt_top),
            rect: false,
            hidden: true,
        };
    }

    // Propagate the growth: a stair if everything stays under the
    // diagonal, otherwise a rectangle growing in both dimensions.
    RegionSpec {
        tt_begin,
        tt_end: TtEnd::Uc,
        vt_begin,
        vt_end: VtEnd::Now,
        rect: !all_under,
        hidden: false,
    }
}

/// Checks that `parent` covers `child` at time `ct` (used by tree
/// consistency checks; coverage at all later times follows from the
/// construction in [`bound_entries`]).
pub fn covers_at(parent: &RegionSpec, child: &RegionSpec, ct: Day) -> bool {
    parent.resolve(ct).contains(&child.resolve(ct))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;
    use crate::value::{TtEnd, VtEnd};

    fn d(n: i32) -> Day {
        Day(n)
    }

    fn leaf(ttb: i32, tte: Option<i32>, vtb: i32, vte: Option<i32>) -> RegionSpec {
        RegionSpec::leaf(
            d(ttb),
            tte.map_or(TtEnd::Uc, |x| TtEnd::Ground(d(x))),
            d(vtb),
            vte.map_or(VtEnd::Now, |x| VtEnd::Ground(d(x))),
        )
    }

    /// Coverage must hold at the bound time and at all later times.
    fn assert_covers_forever(parent: &RegionSpec, children: &[RegionSpec], ct: Day) {
        for dt in [0, 1, 5, 100, 100_000] {
            let t = ct.plus(dt);
            for c in children {
                assert!(
                    covers_at(parent, c, t),
                    "parent {parent} fails to cover {c} at ct+{dt}"
                );
            }
        }
    }

    #[test]
    fn static_rectangles_get_rect_bound() {
        let ct = d(100);
        let children = [
            leaf(10, Some(20), 30, Some(60)),
            leaf(15, Some(40), 5, Some(25)),
        ];
        let b = bound_entries(&children, ct);
        assert_eq!(b.tt_end, TtEnd::Ground(d(40)));
        assert_eq!(b.vt_end, VtEnd::Ground(d(60)));
        assert!(!b.hidden);
        assert_covers_forever(&b, &children, ct);
    }

    #[test]
    fn stopped_stairs_get_stair_bound() {
        let ct = d(100);
        // Two stopped stairs (case 4): a stair bound is tighter than the
        // bounding rectangle.
        let children = [leaf(10, Some(50), 10, None), leaf(20, Some(60), 15, None)];
        let b = bound_entries(&children, ct);
        assert!(matches!(b.resolve(ct), Region::Stair(_)), "bound {b}");
        assert_covers_forever(&b, &children, ct);
    }

    #[test]
    fn growing_stairs_get_growing_stair_bound() {
        let ct = d(100);
        let children = [leaf(10, None, 10, None), leaf(20, None, 15, None)];
        let b = bound_entries(&children, ct);
        assert!(b.grows_tt());
        assert!(b.grows_vt(ct));
        assert!(!b.rect, "all children under the diagonal: stair bound");
        assert_covers_forever(&b, &children, ct);
    }

    #[test]
    fn grower_with_tall_rect_gets_growing_rect_bound() {
        let ct = d(100);
        // A growing stair plus a rectangle that extends above the
        // diagonal but NOT above the current time: Figure 4(a).
        let children = [leaf(50, None, 50, None), leaf(60, Some(80), 0, Some(90))];
        let b = bound_entries(&children, ct);
        assert!(b.rect, "must be a growing rectangle, got {b}");
        assert!(b.grows_vt(ct));
        assert_covers_forever(&b, &children, ct);
    }

    #[test]
    fn hidden_policy_hides_small_stair() {
        let ct = d(100);
        // A growing stair plus a fixed rectangle reaching to vt = 200,
        // above the current time: Figure 4(c).
        let children = [leaf(50, None, 50, None), leaf(60, Some(80), 0, Some(200))];
        let b = bound_entries(&children, ct);
        assert!(b.hidden, "expected a hidden bound, got {b}");
        assert_eq!(b.vt_end, VtEnd::Ground(d(200)));
        assert_covers_forever(&b, &children, ct);
        // Before outgrowth the bound is the fixed rectangle...
        assert!(matches!(b.resolve(d(150)), Region::Rect(r) if r.vt2 == d(200)));
        // ...afterwards the Hidden adjustment turns it into a growing
        // rectangle.
        assert!(matches!(b.resolve(d(300)), Region::Rect(r) if r.vt2 == d(300)));
    }

    #[test]
    fn hidden_is_forced_not_optional() {
        // With a fixed child above the current time, a growing bound
        // cannot cover it: the hidden fixed rectangle is the only sound
        // encoding, so `bound_entries` must choose it.
        let ct = d(100);
        let children = [leaf(50, None, 50, None), leaf(60, Some(80), 0, Some(200))];
        let b = bound_entries(&children, ct);
        assert!(b.hidden);
        assert_covers_forever(&b, &children, ct);
        // The unsound alternative really is unsound: a rectangle growing
        // in both dimensions tops out at ct = 100 < 200.
        let growing = RegionSpec {
            tt_begin: d(50),
            tt_end: TtEnd::Uc,
            vt_begin: d(0),
            vt_end: VtEnd::Now,
            rect: true,
            hidden: false,
        };
        assert!(!covers_at(&growing, &children[1], ct));
    }

    #[test]
    fn hidden_child_keeps_parent_latent() {
        let ct = d(100);
        // A hidden internal entry (fixed bound 150 hiding a grower) plus
        // a fixed rectangle up to 400: the parent must account for the
        // hidden child's future growth.
        let hidden_child = RegionSpec {
            tt_begin: d(40),
            tt_end: TtEnd::Uc,
            vt_begin: d(10),
            vt_end: VtEnd::Ground(d(150)),
            rect: false,
            hidden: true,
        };
        let fixed = leaf(10, Some(90), 0, Some(400));
        let b = bound_entries(&[hidden_child, fixed], ct);
        assert!(b.hidden, "grower hidden in parent too: {b}");
        assert_covers_forever(&b, &[hidden_child, fixed], ct);
        // Far in the future the hidden child outgrows 400 as well; the
        // parent's own Hidden adjustment must then kick in.
        assert!(covers_at(&b, &hidden_child, d(1000)));
    }

    #[test]
    fn mixed_current_growers_force_now_bound_when_nothing_fixed_above() {
        let ct = d(100);
        // Growers plus a fixed rect whose top is below ct: nothing to
        // hide behind.
        let children = [leaf(50, None, 50, None), leaf(10, Some(30), 0, Some(60))];
        let b = bound_entries(&children, ct);
        assert!(!b.hidden);
        assert!(b.grows_vt(ct));
        assert_covers_forever(&b, &children, ct);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_child_set_panics() {
        let _ = bound_entries(&[], d(0));
    }

    #[test]
    fn bound_of_single_child_is_tight() {
        let ct = d(100);
        for child in [
            leaf(10, None, 10, None),
            leaf(10, Some(50), 0, Some(30)),
            leaf(10, None, 0, Some(30)),
        ] {
            let b = bound_entries(&[child], ct);
            assert_covers_forever(&b, &[child], ct);
            assert_eq!(
                b.resolve(ct).area(),
                child.resolve(ct).area(),
                "single-child bound of {child} must not add dead space"
            );
        }
    }
}
