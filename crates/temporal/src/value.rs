//! The `UC` / `NOW` timestamp variables and unresolved region
//! descriptors.
//!
//! The 4TS format (Snodgrass's TQuel format, the paper's Section 2)
//! allows the variable `UC` ("until changed") as the transaction-time
//! end and the variable `NOW` as the valid-time end. An index entry —
//! four timestamps plus, in non-leaf nodes, the `Rectangle` and `Hidden`
//! flags — does not denote a fixed region: it must be *resolved* against
//! the current time. [`RegionSpec`] is that unresolved descriptor, and
//! [`RegionSpec::resolve`] is the paper's Section 3 resolution
//! algorithm, including the `Hidden`-flag adjustment.

use crate::day::Day;
use crate::region::{Rect, Region, Stair};
use crate::{Result, TemporalError};

/// Transaction-time end: either a fixed day or the variable `UC`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TtEnd {
    /// Fixed ("ground") value: the tuple was logically deleted.
    Ground(Day),
    /// "Until changed": the tuple is part of the current database state.
    Uc,
}

/// Valid-time end: either a fixed day or the variable `NOW`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VtEnd {
    /// Fixed ("ground") value.
    Ground(Day),
    /// The fact is valid until the current time and keeps extending.
    Now,
}

impl TtEnd {
    /// Resolves `UC` to the current time (the paper's
    /// `IF TTend = UC THEN set TTend to the current time`).
    pub fn resolve(self, ct: Day) -> Day {
        match self {
            TtEnd::Ground(d) => d,
            TtEnd::Uc => ct,
        }
    }

    /// True for the `UC` variable.
    pub fn is_uc(self) -> bool {
        matches!(self, TtEnd::Uc)
    }
}

impl VtEnd {
    /// Resolves `NOW` to the resolved transaction-time end (the paper's
    /// `IF VTend = NOW THEN set VTend to TTend`).
    pub fn resolve(self, resolved_tt_end: Day) -> Day {
        match self {
            VtEnd::Ground(d) => d,
            VtEnd::Now => resolved_tt_end,
        }
    }

    /// True for the `NOW` variable.
    pub fn is_now(self) -> bool {
        matches!(self, VtEnd::Now)
    }
}

impl std::fmt::Display for TtEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TtEnd::Ground(d) => write!(f, "{d}"),
            TtEnd::Uc => write!(f, "UC"),
        }
    }
}

impl std::fmt::Display for VtEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VtEnd::Ground(d) => write!(f, "{d}"),
            VtEnd::Now => write!(f, "NOW"),
        }
    }
}

/// An unresolved bitemporal region descriptor: the exact content of a
/// GR-tree node entry (Section 3 of the paper).
///
/// In a **leaf** entry the four timestamps encode the tuple's bitemporal
/// region exactly (the six cases of the paper's Figure 2); the flags are
/// unused and `rect` is derivable (`VTend` ground ⇒ rectangle). In a
/// **non-leaf** entry the timestamps bound the child node's regions and
/// the two flags disambiguate:
///
/// * `rect` — the paper's "Rectangle" flag: a `(tt1, UC, vt1, NOW)`
///   combination denotes a rectangle growing in *both* dimensions rather
///   than a stair shape.
/// * `hidden` — the paper's "Hidden" flag: a growing stair shape is
///   hidden inside a bounding rectangle with a fixed valid-time end and
///   will one day outgrow it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionSpec {
    /// Transaction-time begin (always ground).
    pub tt_begin: Day,
    /// Transaction-time end (ground or `UC`).
    pub tt_end: TtEnd,
    /// Valid-time begin (always ground).
    pub vt_begin: Day,
    /// Valid-time end (ground or `NOW`).
    pub vt_end: VtEnd,
    /// The "Rectangle" flag (meaningful only when `vt_end` is `NOW`).
    pub rect: bool,
    /// The "Hidden" flag (meaningful only when `vt_end` is ground).
    pub hidden: bool,
}

impl RegionSpec {
    /// A leaf-entry descriptor: flags cleared, shape determined by the
    /// timestamps alone (leaf `NOW` always denotes a stair shape).
    pub fn leaf(tt_begin: Day, tt_end: TtEnd, vt_begin: Day, vt_end: VtEnd) -> RegionSpec {
        RegionSpec {
            tt_begin,
            tt_end,
            vt_begin,
            vt_end,
            rect: false,
            hidden: false,
        }
    }

    /// Validates the structural constraints of Section 2: begin ≤ end on
    /// both axes (after resolution at `ct`), and `vt_begin ≤ tt_begin`
    /// whenever the valid-time end is `NOW` (otherwise the stair would be
    /// empty at insertion time — the paper's second valid-time insertion
    /// constraint).
    pub fn validate(&self, ct: Day) -> Result<()> {
        let tte = self.tt_end.resolve(ct);
        if self.tt_begin > tte {
            return Err(TemporalError::Constraint(format!(
                "TTbegin {} > TTend {}",
                self.tt_begin, tte
            )));
        }
        match self.vt_end {
            VtEnd::Ground(v) => {
                if self.vt_begin > v {
                    return Err(TemporalError::Constraint(format!(
                        "VTbegin {} > VTend {}",
                        self.vt_begin, v
                    )));
                }
            }
            VtEnd::Now => {
                if !self.rect && self.vt_begin > self.tt_begin {
                    return Err(TemporalError::Constraint(format!(
                        "VTend = NOW requires VTbegin {} <= TTbegin {}",
                        self.vt_begin, self.tt_begin
                    )));
                }
            }
        }
        Ok(())
    }

    /// The paper's `Hidden`-flag adjustment, applied before any
    /// computation involving the entry:
    ///
    /// ```text
    /// IF flag Hidden is set AND VTend is fixed AND VTend is less than
    /// the current time THEN set VTend to NOW
    /// ```
    ///
    /// Once the hidden growing stair has outgrown its fixed bounding
    /// rectangle the entry must be treated as growing in valid time
    /// (and, having contained a stair plus taller regions, as a
    /// rectangle).
    #[must_use]
    pub fn adjust_hidden(mut self, ct: Day) -> RegionSpec {
        if self.hidden {
            if let VtEnd::Ground(v) = self.vt_end {
                if v < ct {
                    self.vt_end = VtEnd::Now;
                    self.rect = true;
                }
            }
        }
        self
    }

    /// Resolves the descriptor to an exact region at current time `ct`,
    /// per the paper's Section 3 algorithms (Hidden adjustment, then
    /// `UC → ct`, then `NOW → TTend`).
    pub fn resolve(self, ct: Day) -> Region {
        let adj = self.adjust_hidden(ct);
        let tte = adj.tt_end.resolve(ct);
        match adj.vt_end {
            VtEnd::Ground(v) => Region::Rect(Rect::new(adj.tt_begin, tte, adj.vt_begin, v)),
            VtEnd::Now => {
                if adj.rect {
                    // A rectangle growing in both dimensions: top edge at
                    // the resolved transaction-time end.
                    Region::Rect(Rect::new(adj.tt_begin, tte, adj.vt_begin, tte))
                } else {
                    Region::Stair(Stair::new(adj.tt_begin, tte, adj.vt_begin))
                }
            }
        }
    }

    /// Whether the region keeps extending in the transaction-time
    /// direction as time passes.
    pub fn grows_tt(&self) -> bool {
        self.tt_end.is_uc()
    }

    /// Whether the region keeps extending in the valid-time direction as
    /// time passes (at or after current time `ct`). A hidden entry counts
    /// once its fixed bound has been outgrown; a `NOW` entry grows only
    /// while its transaction time is still open.
    pub fn grows_vt(&self, ct: Day) -> bool {
        match self.adjust_hidden(ct).vt_end {
            VtEnd::Now => self.tt_end.is_uc(),
            VtEnd::Ground(_) => false,
        }
    }

    /// True when every point `(t, v)` of the region satisfies `v <= t`
    /// at all times — i.e. the region never extends above the `y = x`
    /// diagonal and can therefore live inside a bounding stair shape
    /// (the paper's Figure 4(b) criterion).
    pub fn under_diagonal(&self, ct: Day) -> bool {
        let adj = self.adjust_hidden(ct);
        match adj.vt_end {
            VtEnd::Now => !adj.rect,
            // A fixed rectangle lies under the diagonal iff its top-left
            // corner does.
            VtEnd::Ground(v) => v <= adj.tt_begin && !adj.hidden,
        }
    }
}

impl std::fmt::Display for RegionSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}, {}] x [{}, {}]{}{}",
            self.tt_begin,
            self.tt_end,
            self.vt_begin,
            self.vt_end,
            if self.rect { " R" } else { "" },
            if self.hidden { " H" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(n: i32) -> Day {
        Day(n)
    }

    #[test]
    fn resolve_fixed_rectangle() {
        let spec = RegionSpec::leaf(d(10), TtEnd::Ground(d(20)), d(5), VtEnd::Ground(d(15)));
        let r = spec.resolve(d(100));
        assert_eq!(r, Region::Rect(Rect::new(d(10), d(20), d(5), d(15))));
    }

    #[test]
    fn resolve_uc_rectangle_grows() {
        // Case 1: (tt1, UC, vt1, vt2) — grows in transaction time only.
        let spec = RegionSpec::leaf(d(10), TtEnd::Uc, d(5), VtEnd::Ground(d(15)));
        assert_eq!(
            spec.resolve(d(50)),
            Region::Rect(Rect::new(d(10), d(50), d(5), d(15)))
        );
        assert_eq!(
            spec.resolve(d(90)),
            Region::Rect(Rect::new(d(10), d(90), d(5), d(15)))
        );
        assert!(spec.grows_tt());
        assert!(!spec.grows_vt(d(50)));
    }

    #[test]
    fn resolve_growing_stair() {
        // Case 3: (tt1, UC, vt1, NOW), tt1 = vt1.
        let spec = RegionSpec::leaf(d(10), TtEnd::Uc, d(10), VtEnd::Now);
        assert_eq!(
            spec.resolve(d(40)),
            Region::Stair(Stair::new(d(10), d(40), d(10)))
        );
        assert!(spec.grows_tt());
        assert!(spec.grows_vt(d(40)));
        assert!(spec.under_diagonal(d(40)));
    }

    #[test]
    fn resolve_stopped_stair() {
        // Case 4: (tt1, tt2, vt1, NOW) — the stair froze at deletion.
        let spec = RegionSpec::leaf(d(10), TtEnd::Ground(d(30)), d(10), VtEnd::Now);
        assert_eq!(
            spec.resolve(d(90)),
            Region::Stair(Stair::new(d(10), d(30), d(10)))
        );
        assert!(!spec.grows_vt(d(90)));
    }

    #[test]
    fn resolve_growing_rect_flag() {
        // Internal entry: (tt1, UC, vt1, NOW) with Rectangle flag set
        // means a rectangle growing in both dimensions.
        let spec = RegionSpec {
            tt_begin: d(10),
            tt_end: TtEnd::Uc,
            vt_begin: d(0),
            vt_end: VtEnd::Now,
            rect: true,
            hidden: false,
        };
        assert_eq!(
            spec.resolve(d(40)),
            Region::Rect(Rect::new(d(10), d(40), d(0), d(40)))
        );
        assert!(!spec.under_diagonal(d(40)));
    }

    #[test]
    fn hidden_adjustment_fires_only_after_outgrowth() {
        let spec = RegionSpec {
            tt_begin: d(10),
            tt_end: TtEnd::Uc,
            vt_begin: d(0),
            vt_end: VtEnd::Ground(d(50)),
            rect: false,
            hidden: true,
        };
        // Before the stair outgrows the fixed bound: still the rectangle.
        assert_eq!(
            spec.resolve(d(40)),
            Region::Rect(Rect::new(d(10), d(40), d(0), d(50)))
        );
        assert_eq!(
            spec.resolve(d(50)),
            Region::Rect(Rect::new(d(10), d(50), d(0), d(50)))
        );
        // Afterwards: treated as growing (VTend := NOW, rectangle in both
        // dimensions).
        assert_eq!(
            spec.resolve(d(60)),
            Region::Rect(Rect::new(d(10), d(60), d(0), d(60)))
        );
        assert!(spec.grows_vt(d(60)));
        assert!(!spec.grows_vt(d(40)));
    }

    #[test]
    fn validate_constraints() {
        let ct = d(100);
        // Backwards valid interval.
        assert!(
            RegionSpec::leaf(d(10), TtEnd::Uc, d(20), VtEnd::Ground(d(5)))
                .validate(ct)
                .is_err()
        );
        // NOW with vt_begin after tt_begin: empty stair.
        assert!(RegionSpec::leaf(d(10), TtEnd::Uc, d(20), VtEnd::Now)
            .validate(ct)
            .is_err());
        // Backwards transaction interval.
        assert!(
            RegionSpec::leaf(d(10), TtEnd::Ground(d(5)), d(0), VtEnd::Ground(d(5)))
                .validate(ct)
                .is_err()
        );
        // A legal case-5 stair (tt1 > vt1).
        assert!(RegionSpec::leaf(d(10), TtEnd::Uc, d(5), VtEnd::Now)
            .validate(ct)
            .is_ok());
    }

    #[test]
    fn display_forms() {
        let spec = RegionSpec::leaf(d(0), TtEnd::Uc, d(0), VtEnd::Now);
        let s = spec.to_string();
        assert!(s.contains("UC") && s.contains("NOW"), "{s}");
    }
}
