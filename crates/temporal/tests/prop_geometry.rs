//! Property-based tests of the bitemporal geometry and the bounding
//! algebra: predicates are cross-checked against a brute-force
//! point-enumeration oracle, and the GR-tree bounding function is
//! checked to cover its children arbitrarily far into the future.

use grt_temporal::{
    bound_entries, covers_at, Day, Predicate, Region, RegionSpec, TimeExtent, TtEnd, VtEnd,
};
use proptest::prelude::*;

/// Generates an arbitrary legal time extent over a compact day window
/// centred at `ct = 40` so that brute-force enumeration stays cheap.
fn arb_extent() -> impl Strategy<Value = TimeExtent> {
    (
        0i32..40,
        0i32..40,
        0i32..60,
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(a, b, c, tt_uc, vt_now)| {
            let tt_begin = Day(a.min(b));
            let tt_end = if tt_uc {
                TtEnd::Uc
            } else {
                TtEnd::Ground(Day(a.max(b)))
            };
            if vt_now {
                // VTbegin must not exceed TTbegin for NOW extents.
                let vtb = Day(c.min(tt_begin.0));
                TimeExtent::from_parts(tt_begin, tt_end, vtb, VtEnd::Now).unwrap()
            } else {
                let vtb = Day(c.min(59));
                let vte = Day(c.max(a.max(b)).min(59).max(vtb.0));
                TimeExtent::from_parts(tt_begin, tt_end, vtb, VtEnd::Ground(vte)).unwrap()
            }
        })
}

fn cells(r: &Region) -> std::collections::BTreeSet<(i32, i32)> {
    let mut out = std::collections::BTreeSet::new();
    for t in -1..=120 {
        for v in -1..=120 {
            if r.contains_point(Day(t), Day(v)) {
                out.insert((t, v));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every predicate agrees with the brute-force point-set oracle.
    #[test]
    fn predicates_match_point_oracle(a in arb_extent(), b in arb_extent(), ct_off in 0i32..50) {
        let ct = Day(40 + ct_off);
        let (ra, rb) = (a.region(ct), b.region(ct));
        let (ca, cb) = (cells(&ra), cells(&rb));
        prop_assert_eq!(Predicate::Overlaps.eval(&a, &b, ct), !ca.is_disjoint(&cb));
        prop_assert_eq!(Predicate::Contains.eval(&a, &b, ct), cb.is_subset(&ca));
        prop_assert_eq!(Predicate::ContainedIn.eval(&a, &b, ct), ca.is_subset(&cb));
        prop_assert_eq!(Predicate::Equal.eval(&a, &b, ct), ca == cb);
        prop_assert_eq!(ra.intersection_area(&rb), ca.intersection(&cb).count() as i128);
        prop_assert_eq!(ra.area(), ca.len() as i128);
    }

    /// Regions grow monotonically with the current time and never shrink.
    #[test]
    fn regions_grow_monotonically(e in arb_extent(), d1 in 0i32..60, d2 in 0i32..60) {
        let ct = Day(40);
        let (lo, hi) = (ct.plus(d1.min(d2)), ct.plus(d1.max(d2)));
        let (early, late) = (e.region(lo), e.region(hi));
        prop_assert!(late.contains(&early), "{early} not within {late}");
    }

    /// The bound of any nonempty child set covers every child at the
    /// bound time and far into the future.
    #[test]
    fn bound_covers_children_forever(
        exts in proptest::collection::vec(arb_extent(), 1..8),
        probe in 0i32..10_000,
    ) {
        let ct = Day(40);
        let specs: Vec<RegionSpec> = exts.iter().map(TimeExtent::spec).collect();
        let b = bound_entries(&specs, ct);
        for s in &specs {
            prop_assert!(covers_at(&b, s, ct), "bound {b} misses {s} at ct");
            prop_assert!(covers_at(&b, s, ct.plus(probe)), "bound {b} misses {s} at ct+{probe}");
        }
    }

    /// Bounding is monotone: the bound of a superset covers the bound of
    /// a subset (evaluated as regions).
    #[test]
    fn bound_is_monotone(
        exts in proptest::collection::vec(arb_extent(), 2..8),
        extra in arb_extent(),
    ) {
        let ct = Day(40);
        let mut specs: Vec<RegionSpec> = exts.iter().map(TimeExtent::spec).collect();
        let small = bound_entries(&specs, ct);
        specs.push(extra.spec());
        let big = bound_entries(&specs, ct);
        for probe in [0, 1, 100] {
            let t = ct.plus(probe);
            prop_assert!(
                big.resolve(t).contains(&small.resolve(t)) ||
                // The bigger bound may switch shape (e.g. rect -> hidden
                // rect) — what matters is that it still covers all the
                // original children.
                exts.iter().all(|e| covers_at(&big, &e.spec(), t)),
                "bound {big} lost children of {small} at +{probe}"
            );
        }
    }

    /// Text and binary codecs round-trip every legal extent.
    #[test]
    fn codecs_roundtrip(e in arb_extent()) {
        let text = e.to_string();
        prop_assert_eq!(TimeExtent::parse(&text).unwrap(), e);
        prop_assert_eq!(TimeExtent::decode(&e.encode_array()).unwrap(), e);
    }

    /// The two-sided containment characterisation of equality.
    #[test]
    fn equality_is_mutual_containment(a in arb_extent(), b in arb_extent()) {
        let ct = Day(55);
        let eq = Predicate::Equal.eval(&a, &b, ct);
        let both = Predicate::Contains.eval(&a, &b, ct) && Predicate::ContainedIn.eval(&a, &b, ct);
        prop_assert_eq!(eq, both);
    }

    /// Logical deletion freezes the region: it no longer changes with ct.
    #[test]
    fn deleted_tuples_stop_growing(e in arb_extent(), probe in 1i32..1000) {
        let ct = Day(60);
        if e.is_current() {
            let dead = e.logical_delete(ct).unwrap();
            prop_assert_eq!(dead.region(ct), dead.region(ct.plus(probe)));
        }
    }
}
