//! Umbrella crate re-exporting the GR-tree DataBlade reproduction.
//!
//! See the individual crates for details:
//! [`grt_temporal`] (bitemporal model), [`grt_sbspace`] (storage),
//! [`grt_rstar`] (baseline R*-tree), [`grt_grtree`] (the GR-tree),
//! [`grt_ids`] (the extensible mini-DBMS), [`grt_blade`] (the
//! DataBlade), [`grt_workload`] (synthetic workloads), and the wire
//! layer: [`grt_server`] (the TCP server) and [`grt_client`] (the
//! client drivers and protocol codec).

pub use grt_blade as blade;
pub use grt_client as client;
pub use grt_gist as gist;
pub use grt_grtree as grtree;
pub use grt_ids as ids;
pub use grt_rstar as rstar;
pub use grt_sbspace as sbspace;
pub use grt_server as server;
pub use grt_temporal as temporal;
pub use grt_workload as workload;
